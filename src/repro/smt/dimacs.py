"""DIMACS CNF import/export for the SAT core.

Lets the propositional skeleton of any solver instance be dumped for
inspection or cross-checked against external SAT solvers, and standard
DIMACS benchmarks be replayed through :class:`repro.smt.sat.SatSolver`.
Difference-logic atoms have no DIMACS counterpart; exporting a solver with
asserted theory atoms still produces a valid *relaxation* (the Boolean
skeleton), which is noted in the header.
"""
from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO, Union

from .errors import SmtError
from .sat import SatSolver

__all__ = ["parse_dimacs", "load_dimacs", "write_dimacs", "solver_from_dimacs"]


class DimacsError(SmtError):
    """Malformed DIMACS input."""


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS CNF text into (num_vars, clauses)."""
    num_vars: int = 0
    declared_clauses: int = -1
    clauses: list[list[int]] = []
    current: list[int] = []
    saw_header = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(
                    f"line {line_no}: expected 'p cnf <vars> <clauses>'"
                )
            try:
                num_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError:
                raise DimacsError(
                    f"line {line_no}: non-numeric header fields"
                ) from None
            saw_header = True
            continue
        if not saw_header:
            raise DimacsError(f"line {line_no}: clause before header")
        for token in line.split():
            try:
                lit = int(token)
            except ValueError:
                raise DimacsError(
                    f"line {line_no}: bad literal {token!r}"
                ) from None
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                if abs(lit) > num_vars:
                    raise DimacsError(
                        f"line {line_no}: literal {lit} exceeds "
                        f"declared variable count {num_vars}"
                    )
                current.append(lit)
    if current:
        clauses.append(current)  # tolerate a missing trailing 0
    if declared_clauses >= 0 and len(clauses) != declared_clauses:
        raise DimacsError(
            f"header declares {declared_clauses} clauses, found {len(clauses)}"
        )
    return num_vars, clauses


def load_dimacs(path: Union[str, Path]) -> tuple[int, list[list[int]]]:
    return parse_dimacs(Path(path).read_text())


def solver_from_dimacs(source: Union[str, Path]) -> SatSolver:
    """Build a :class:`SatSolver` from DIMACS text or a file path."""
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".cnf")
    ):
        num_vars, clauses = load_dimacs(source)
    else:
        num_vars, clauses = parse_dimacs(str(source))
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def write_dimacs(
    num_vars: int,
    clauses: Iterable[Iterable[int]],
    out: Union[str, Path, TextIO],
    comment: str = "",
) -> None:
    """Write clauses in DIMACS CNF format."""
    clause_list = [list(c) for c in clauses]
    lines = []
    if comment:
        for part in comment.splitlines():
            lines.append(f"c {part}")
    lines.append(f"p cnf {num_vars} {len(clause_list)}")
    for clause in clause_list:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    text = "\n".join(lines) + "\n"
    if hasattr(out, "write"):
        out.write(text)
    else:
        Path(out).write_text(text)
