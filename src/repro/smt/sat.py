"""CDCL SAT core.

A conflict-driven clause-learning solver in the MiniSat tradition:

* two-watched-literal propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS decision heuristic with phase saving,
* Luby-sequence restarts,
* incremental clause addition between ``solve()`` calls, and
* an optional *theory* hook (DPLL(T)): after every propagation fixpoint the
  solver feeds newly assigned theory literals to the theory, which may answer
  with a conflict explanation (a set of asserted literals that are jointly
  theory-inconsistent).

Literals cross the public API as signed DIMACS-style integers (``+v`` /
``-v``, variables numbered from 1). Internally literals are encoded as
``2*v`` (positive) and ``2*v + 1`` (negative) so watch lists can live in a
flat list.
"""
from __future__ import annotations

import heapq
import time
from typing import Callable, Iterable, Optional, Protocol

from .errors import Result

__all__ = ["SatSolver", "Theory", "luby"]


class Theory(Protocol):
    """Interface the SAT core expects from a theory solver."""

    def is_theory_var(self, var: int) -> bool:
        """Whether ``var`` is a theory atom (gets asserted on assignment)."""

    def assert_literal(self, lit: int) -> Optional[list[int]]:
        """Assert a signed literal; return a conflicting literal set or None.

        The returned conflict must contain only literals previously asserted
        via this method (including ``lit`` itself), all currently true.
        """

    def pop_to(self, n_asserted: int) -> None:
        """Undo assertions so that only the first ``n_asserted`` remain."""


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


_UNASSIGNED = -1


class SatSolver:
    """A CDCL SAT solver with an optional difference-logic theory plugin."""

    def __init__(
        self,
        theory: Optional[Theory] = None,
        enable_vsids: bool = True,
        enable_learning: bool = True,
        enable_restarts: bool = True,
    ):
        """``enable_*`` flags exist for the solver-feature ablation bench.

        Disabling learning keeps conflict analysis (the backjump level and
        asserting literal still need it) but caps the learned-clause DB at
        a handful of clauses, approximating a non-learning DPLL search.
        """
        self.theory = theory
        self.enable_vsids = enable_vsids
        self.enable_learning = enable_learning
        self.enable_restarts = enable_restarts
        self._nvars = 0
        # clause arena; index 0 unused so "no reason" can be 0-falsy... use -1
        self._clauses: list[list[int]] = []
        self._learned_from = 0  # clauses[>= _learned_from] are learned
        self._watches: list[list[int]] = [[], []]  # indexed by internal lit
        self._assign: list[int] = [_UNASSIGNED]  # per var: 0/1 value
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._phase: list[int] = [0]
        self._trail: list[int] = []  # internal lits
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._thead = 0  # next trail index to hand to the theory
        self._theory_trail: list[int] = []  # trail idx of each theory assert
        self._order: list[tuple[float, int]] = []  # (-activity, var) heap
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._ok = True
        self.stats = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "theory_conflicts": 0,
        }
        # learned-clause DB reduction bookkeeping
        self._max_learnts = 4000.0 if self.enable_learning else 8.0
        self._learnt_bump = 1.15 if self.enable_learning else 1.0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable, returning its (positive) index."""
        self._nvars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(0)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._order, (0.0, self._nvars))
        return self._nvars

    @property
    def num_vars(self) -> int:
        return self._nvars

    @property
    def num_clauses(self) -> int:
        return self._learned_from

    @staticmethod
    def _to_internal(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    @staticmethod
    def _to_external(ilit: int) -> int:
        var = ilit >> 1
        return -var if ilit & 1 else var

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of signed external literals.

        Returns False if the formula became trivially unsatisfiable. May be
        called between ``solve()`` calls (incremental use); the solver resets
        to decision level 0 first.
        """
        self._cancel_until(0)
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            if lit == 0 or abs(lit) > self._nvars:
                raise ValueError(f"literal {lit} out of range")
            ilit = self._to_internal(lit)
            if ilit ^ 1 in seen:  # tautology
                return True
            if ilit in seen:
                continue
            val = self._value(ilit)
            if val == 1 and self._level[ilit >> 1] == 0:
                return True  # already satisfied at root
            if val == 0 and self._level[ilit >> 1] == 0:
                continue  # falsified at root: drop literal
            seen.add(ilit)
            clause.append(ilit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        ci = len(self._clauses)
        self._clauses.append(clause)
        self._learned_from = len(self._clauses)
        self._watches[clause[0]].append(ci)
        self._watches[clause[1]].append(ci)
        return True

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------
    def _value(self, ilit: int) -> int:
        """1 true, 0 false, -1 unassigned, for an internal literal."""
        v = self._assign[ilit >> 1]
        if v == _UNASSIGNED:
            return -1
        return v ^ (ilit & 1)

    def _enqueue(self, ilit: int, reason: int) -> bool:
        val = self._value(ilit)
        if val == 1:
            return True
        if val == 0:
            return False
        var = ilit >> 1
        self._assign[var] = 1 - (ilit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(ilit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        assign = self._assign
        phase = self._phase
        activity = self._activity
        order = self._order
        for i in range(len(self._trail) - 1, limit - 1, -1):
            ilit = self._trail[i]
            var = ilit >> 1
            phase[var] = assign[var]
            assign[var] = _UNASSIGNED
            heapq.heappush(order, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, limit)
        if self._thead > limit:
            tt = self._theory_trail
            while tt and tt[-1] >= limit:
                tt.pop()
            if self.theory is not None:
                self.theory.pop_to(len(tt))
            self._thead = limit

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[list[int]]:
        """Boolean constraint propagation; returns a conflicting clause."""
        watches = self._watches
        clauses = self._clauses
        trail = self._trail
        while self._qhead < len(trail):
            ilit = trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            false_lit = ilit ^ 1
            watch_list = watches[false_lit]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                clause = clauses[ci]
                # make sure false_lit is at position 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    watch_list[j] = ci
                    j += 1
                    continue
                # search replacement watch
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[clause[1]].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                # clause is unit or conflicting
                watch_list[j] = ci
                j += 1
                if not self._enqueue(first, ci):
                    # conflict: compact remaining watches and report
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    self._qhead = len(trail)
                    return clause
            del watch_list[j:]
        return None

    def _theory_check(self) -> Optional[list[int]]:
        """Feed newly assigned theory literals to the theory solver.

        Returns a conflict as a *clause* of internal literals, or None.
        """
        theory = self.theory
        if theory is None:
            self._thead = len(self._trail)
            return None
        trail = self._trail
        while self._thead < len(trail):
            idx = self._thead
            ilit = trail[idx]
            self._thead += 1
            var = ilit >> 1
            if not theory.is_theory_var(var):
                continue
            self._theory_trail.append(idx)
            conflict = theory.assert_literal(self._to_external(ilit))
            if conflict is not None:
                self.stats["theory_conflicts"] += 1
                # theory reports true literals; conflict clause negates them
                return [self._to_internal(-l) for l in conflict]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        if not self.enable_vsids:
            return
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inv = 1e-100
            act = self._activity
            for v in range(1, self._nvars + 1):
                act[v] *= inv
            self._var_inc *= inv

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """1UIP analysis. Returns (learned clause, backjump level)."""
        level = self._level
        reason = self._reason
        seen = [False] * (self._nvars + 1)
        learned: list[int] = [0]  # slot 0 for the asserting literal
        counter = 0
        cur_level = self._decision_level()
        p = -1  # internal lit being resolved on
        trail = self._trail
        index = len(trail) - 1
        reason_clause: Optional[list[int]] = conflict
        while True:
            assert reason_clause is not None
            for q in reason_clause:
                if p != -1 and q == p:
                    continue
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if level[var] >= cur_level:
                    counter += 1
                else:
                    learned.append(q)
            # walk back to next marked literal on the trail
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            var = p >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = p ^ 1
                break
            ri = reason[var]
            if ri == -1:
                raise AssertionError("resolving on a decision literal")
            reason_clause = self._clauses[ri]
        # conflict-clause minimization: drop literals implied by the rest
        marked = {q >> 1 for q in learned[1:]}
        kept = [learned[0]]
        for q in learned[1:]:
            ri = reason[q >> 1]
            if ri != -1 and all(
                (r >> 1) in marked or level[r >> 1] == 0
                for r in self._clauses[ri]
                if r != (q ^ 1)
            ):
                continue  # dominated: implied by other learned literals
            kept.append(q)
        learned = kept
        if len(learned) == 1:
            return learned, 0
        # backjump to the second-highest level in the clause
        max_i = 1
        for i in range(2, len(learned)):
            if level[learned[i] >> 1] > level[learned[max_i] >> 1]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, level[learned[1] >> 1]

    def _record_learned(self, learned: list[int]) -> None:
        self.stats["learned"] += 1
        if len(learned) == 1:
            self._enqueue(learned[0], -1)
            return
        ci = len(self._clauses)
        self._clauses.append(learned)
        self._watches[learned[0]].append(ci)
        self._watches[learned[1]].append(ci)
        self._enqueue(learned[0], ci)

    def _reduce_learned(self) -> None:
        """Drop long, unlocked learned clauses when the DB grows too large."""
        n_learned = len(self._clauses) - self._learned_from
        if n_learned <= self._max_learnts:
            return
        locked = {
            self._reason[ilit >> 1]
            for ilit in self._trail
            if self._reason[ilit >> 1] != -1
        }
        keep_from = self._learned_from
        survivors: list[list[int]] = []
        dropped: set[int] = set()
        learned_indices = range(keep_from, len(self._clauses))
        by_size = sorted(
            learned_indices, key=lambda ci: len(self._clauses[ci])
        )
        quota = int(self._max_learnts // 2)
        for rank, ci in enumerate(by_size):
            if ci in locked or len(self._clauses[ci]) <= 2 or rank < quota:
                survivors.append(self._clauses[ci])
            else:
                dropped.add(ci)
        if not dropped:
            return
        # rebuild arena + watches for the learned segment
        remap: dict[int, int] = {}
        new_clauses = self._clauses[:keep_from]
        for ci in range(keep_from, len(self._clauses)):
            if ci in dropped:
                continue
            remap[ci] = len(new_clauses)
            new_clauses.append(self._clauses[ci])
        self._clauses = new_clauses
        for lit in range(len(self._watches)):
            wl = self._watches[lit]
            out = []
            for ci in wl:
                if ci < keep_from:
                    out.append(ci)
                elif ci in remap:
                    out.append(remap[ci])
            self._watches[lit] = out
        for var in range(1, self._nvars + 1):
            ri = self._reason[var]
            if ri >= keep_from:
                self._reason[var] = remap.get(ri, -1)
        self._max_learnts *= self._learnt_bump

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> int:
        """Pick an unassigned variable by activity; 0 when all assigned.

        Entries in the order heap may be stale (the variable was assigned, or
        its activity changed since the entry was pushed). Every unassigned
        variable always has at least one entry — one is pushed at creation and
        on every unassignment — so popping until an unassigned variable
        appears is safe; a stale priority only weakens the heuristic.
        """
        order = self._order
        assign = self._assign
        while order:
            _, var = heapq.heappop(order)
            if assign[var] == _UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> Result:
        if not self._ok:
            return Result.UNSAT
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return Result.UNSAT
        tconf = self._theory_check()
        if tconf is not None:
            self._ok = False
            return Result.UNSAT

        deadline = time.monotonic() + max_seconds if max_seconds else None
        restart_idx = 1
        budget = 100 * luby(restart_idx)
        conflicts_here = 0

        while True:
            conflict = self._propagate()
            if conflict is None:
                conflict = self._theory_check()
                if conflict is None and self._qhead < len(self._trail):
                    continue  # theory OK but BCP has new work? (defensive)
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                # A theory conflict may involve only literals below the
                # current decision level (e.g. assigned during re-propagation
                # after a backjump); 1UIP analysis needs the conflict to sit
                # at the top level, so fall back there first.
                top = max(
                    (self._level[q >> 1] for q in conflict), default=0
                )
                if top == 0:
                    self._ok = False
                    return Result.UNSAT
                if top < self._decision_level():
                    self._cancel_until(top)
                learned, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                self._record_learned(learned)
                self._var_inc /= self._var_decay
                continue
            # no conflict
            if max_conflicts is not None and (
                self.stats["conflicts"] >= max_conflicts
            ):
                self._cancel_until(0)
                return Result.UNKNOWN
            if deadline is not None and time.monotonic() > deadline:
                self._cancel_until(0)
                return Result.UNKNOWN
            if self.enable_restarts and conflicts_here >= budget:
                conflicts_here = 0
                restart_idx += 1
                budget = 100 * luby(restart_idx)
                self.stats["restarts"] += 1
                self._cancel_until(0)
                self._reduce_learned()
                if on_restart is not None:
                    on_restart()
                continue
            if not self.enable_restarts and conflicts_here >= budget:
                conflicts_here = 0  # still trim the clause DB periodically
                self._reduce_learned()
            var = self._decide()
            if var == 0:
                return Result.SAT  # full assignment, theory-consistent
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            ilit = (var << 1) | (1 if self._phase[var] == 0 else 0)
            self._enqueue(ilit, -1)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> Optional[bool]:
        v = self._assign[var]
        if v == _UNASSIGNED:
            return None
        return bool(v)
