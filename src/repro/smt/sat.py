"""CDCL SAT core.

A conflict-driven clause-learning solver in the MiniSat tradition:

* two-watched-literal propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS decision heuristic with phase saving,
* Luby-sequence restarts,
* LBD-scored learned-clause database reduction,
* incremental clause addition between ``solve()`` calls, and
* an optional *theory* hook (DPLL(T)): after every propagation fixpoint the
  solver feeds newly assigned theory literals to the theory, which may answer
  with a conflict explanation (a set of asserted literals that are jointly
  theory-inconsistent).

Literals cross the public API as signed DIMACS-style integers (``+v`` /
``-v``, variables numbered from 1). Internally literals are encoded as
``2*v`` (positive) and ``2*v + 1`` (negative) so watch lists can live in a
flat list.

Clause storage is a single flat literal arena (``_arena``) indexed by
per-clause base offsets (``_cbase``) and sizes (``_csize``) instead of a
list of per-clause list objects: clause access in the propagation inner
loop is two int-list reads, there is no per-clause object churn, and the
arena prefix below ``_learned_from`` is stable so learned-clause reduction
only ever compacts the tail. The watched literals of clause ``ci`` are
always ``_arena[_cbase[ci]]`` and ``_arena[_cbase[ci] + 1]``.

The propagation loop binds everything it touches to locals and inlines
literal evaluation: with assignments stored as 0/1/-1, an internal literal
``q`` is true iff ``assign[q >> 1] ^ (q & 1) == 1`` and false iff that
expression is 0 (the unassigned case yields a negative number, matching
neither), so no helper call sits on the hot path.
"""
from __future__ import annotations

import heapq
import random
import time
from typing import Callable, Iterable, Optional, Protocol, Sequence

from .errors import Result

__all__ = ["SatSolver", "Theory", "luby"]


class Theory(Protocol):
    """Interface the SAT core expects from a theory solver."""

    def is_theory_var(self, var: int) -> bool:
        """Whether ``var`` is a theory atom (gets asserted on assignment)."""

    def assert_literal(self, lit: int) -> Optional[list[int]]:
        """Assert a signed literal; return a conflicting literal set or None.

        The returned conflict must contain only literals previously asserted
        via this method (including ``lit`` itself), all currently true.
        """

    def pop_to(self, n_asserted: int) -> None:
        """Undo assertions so that only the first ``n_asserted`` remain."""


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


_UNASSIGNED = -1


class SatSolver:
    """A CDCL SAT solver with an optional difference-logic theory plugin."""

    def __init__(
        self,
        theory: Optional[Theory] = None,
        enable_vsids: bool = True,
        enable_learning: bool = True,
        enable_restarts: bool = True,
        seed: Optional[int] = None,
        var_decay: float = 0.95,
        restart_base: int = 100,
        default_phase: int = 0,
    ):
        """``enable_*`` flags exist for the solver-feature ablation bench.

        Disabling learning keeps conflict analysis (the backjump level and
        asserting literal still need it) but caps the learned-clause DB at
        a handful of clauses, approximating a non-learning DPLL search.

        ``seed``/``var_decay``/``restart_base``/``default_phase`` are the
        portfolio diversification knobs (see
        :mod:`repro.smt.backends.portfolio`): a non-None ``seed`` jitters
        initial variable activities so VSIDS tie-breaks differ per worker,
        ``var_decay`` tunes activity aging, ``restart_base`` scales the
        Luby restart schedule, and ``default_phase`` flips the polarity
        tried first for never-assigned variables. The defaults reproduce
        the historical search trajectory byte-for-byte.
        """
        self.theory = theory
        self.enable_vsids = enable_vsids
        self.enable_learning = enable_learning
        self.enable_restarts = enable_restarts
        self._rng = random.Random(seed) if seed is not None else None
        self._restart_base = restart_base
        self._default_phase = 1 if default_phase else 0
        self._nvars = 0
        # flat clause arena: clause ci is _arena[_cbase[ci] : _cbase[ci] +
        # _csize[ci]]; _clbd[ci] is its LBD score (0 for problem clauses)
        self._arena: list[int] = []
        self._cbase: list[int] = []
        self._csize: list[int] = []
        self._clbd: list[int] = []
        self._learned_from = 0  # clause indices >= this are learned
        self._watches: list[list[int]] = [[], []]  # indexed by internal lit
        self._assign: list[int] = [_UNASSIGNED]  # per var: 0/1 value
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._phase: list[int] = [0]
        self._trail: list[int] = []  # internal lits
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._thead = 0  # next trail index to hand to the theory
        self._theory_trail: list[int] = []  # trail idx of each theory assert
        self._order: list[tuple[float, int]] = []  # (-activity, var) heap
        # duplicate suppression for the order heap: the newest entry pushed
        # per var (its activity, and whether it is still in the heap).
        # Re-pushing an exact duplicate of a live entry cannot change which
        # variable any future _decide pops, so those pushes are skipped —
        # backjumps and restarts re-push only variables whose activity
        # actually moved since their last push.
        self._heap_act: list[float] = [0.0]
        self._heap_live: list[bool] = [False]
        self._seen: list[bool] = [False]  # scratch for _analyze, kept clean
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._ok = True
        self._core: Optional[list[int]] = None
        self.stats = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "learned_dropped": 0,
            "theory_conflicts": 0,
        }
        # learned-clause DB reduction bookkeeping
        self._max_learnts = 4000.0 if self.enable_learning else 8.0
        self._learnt_bump = 1.15 if self.enable_learning else 1.0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable, returning its (positive) index."""
        self._nvars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._phase.append(self._default_phase)
        self._watches.append([])
        self._watches.append([])
        self._seen.append(False)
        if self._rng is None:
            self._activity.append(0.0)
            self._heap_act.append(0.0)
            heapq.heappush(self._order, (0.0, self._nvars))
        else:
            # diversification: seeded activity jitter reorders VSIDS
            # tie-breaks without touching the heuristic's dynamics
            act = self._rng.random() * 1e-3
            self._activity.append(act)
            self._heap_act.append(act)
            heapq.heappush(self._order, (-act, self._nvars))
        self._heap_live.append(True)
        return self._nvars

    @property
    def num_vars(self) -> int:
        return self._nvars

    @property
    def num_clauses(self) -> int:
        return self._learned_from

    @staticmethod
    def _to_internal(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    @staticmethod
    def _to_external(ilit: int) -> int:
        var = ilit >> 1
        return -var if ilit & 1 else var

    def _push_clause(self, clause: list[int], lbd: int) -> int:
        """Append a clause to the arena and watch its first two literals."""
        ci = len(self._cbase)
        self._cbase.append(len(self._arena))
        self._csize.append(len(clause))
        self._clbd.append(lbd)
        self._arena.extend(clause)
        self._watches[clause[0]].append(ci)
        self._watches[clause[1]].append(ci)
        return ci

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of signed external literals.

        Returns False if the formula became trivially unsatisfiable. May be
        called between ``solve()`` calls (incremental use); the solver resets
        to decision level 0 first.
        """
        if self._trail_lim:
            self._cancel_until(0)
        nvars = self._nvars
        assign = self._assign
        level = self._level
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            if lit == 0 or lit > nvars or lit < -nvars:
                raise ValueError(f"literal {lit} out of range")
            ilit = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            if ilit ^ 1 in seen:  # tautology
                return True
            if ilit in seen:
                continue
            var = ilit >> 1
            val = assign[var]
            if val >= 0 and level[var] == 0:
                if val ^ (ilit & 1) == 1:
                    return True  # already satisfied at root
                continue  # falsified at root: drop literal
            seen.add(ilit)
            clause.append(ilit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        # inline _push_clause: this is the bulk-load hot path
        cbase = self._cbase
        ci = len(cbase)
        cbase.append(len(self._arena))
        self._csize.append(len(clause))
        self._clbd.append(0)
        self._arena.extend(clause)
        self._watches[clause[0]].append(ci)
        self._watches[clause[1]].append(ci)
        self._learned_from = ci + 1
        return True

    def add_clause_trusted(self, lits: list[int]) -> bool:
        """``add_clause`` for callers guaranteeing clean input.

        The Tseitin compiler's clauses contain in-range literals over
        pairwise-distinct variables by construction (connective arguments
        are interned, deduplicated and complement-folded before they reach
        it), so the duplicate/tautology bookkeeping of :meth:`add_clause`
        is skipped. Root-level simplification and unit handling are kept —
        they carry incremental-solving semantics, not validation.
        """
        if self._trail_lim:
            self._cancel_until(0)
        if not self._trail:
            # nothing is assigned yet: root-level simplification is a
            # no-op, encode in one pass
            clause = [
                (lit << 1) if lit > 0 else ((-lit) << 1) | 1 for lit in lits
            ]
        else:
            assign = self._assign
            level = self._level
            clause = []
            for lit in lits:
                ilit = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
                var = ilit >> 1
                val = assign[var]
                if val >= 0 and level[var] == 0:
                    if val ^ (ilit & 1) == 1:
                        return True  # already satisfied at root
                    continue  # falsified at root: drop literal
                clause.append(ilit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        cbase = self._cbase
        ci = len(cbase)
        cbase.append(len(self._arena))
        self._csize.append(len(clause))
        self._clbd.append(0)
        self._arena.extend(clause)
        self._watches[clause[0]].append(ci)
        self._watches[clause[1]].append(ci)
        self._learned_from = ci + 1
        return True

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------
    def _value(self, ilit: int) -> int:
        """1 true, 0 false, -1 unassigned, for an internal literal."""
        v = self._assign[ilit >> 1]
        if v == _UNASSIGNED:
            return -1
        return v ^ (ilit & 1)

    def _enqueue(self, ilit: int, reason: int) -> bool:
        var = ilit >> 1
        val = self._assign[var]
        if val >= 0:
            return val ^ (ilit & 1) == 1
        self._assign[var] = 1 - (ilit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(ilit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        assign = self._assign
        phase = self._phase
        activity = self._activity
        order = self._order
        heap_act = self._heap_act
        heap_live = self._heap_live
        push = heapq.heappush
        trail = self._trail
        for i in range(len(trail) - 1, limit - 1, -1):
            var = trail[i] >> 1
            phase[var] = assign[var]
            assign[var] = _UNASSIGNED
            act = activity[var]
            if not heap_live[var] or heap_act[var] != act:
                heap_act[var] = act
                heap_live[var] = True
                push(order, (-act, var))
        del trail[limit:]
        del self._trail_lim[level:]
        if self._qhead > limit:
            self._qhead = limit
        if self._thead > limit:
            tt = self._theory_trail
            while tt and tt[-1] >= limit:
                tt.pop()
            if self.theory is not None:
                self.theory.pop_to(len(tt))
            self._thead = limit

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[list[int]]:
        """Boolean constraint propagation; returns a conflicting clause.

        The inner loop works directly on the flat arena with every lookup
        bound to a local; unit enqueueing is inlined (the trail append is
        visible to the outer loop through ``trail`` itself).
        """
        watches = self._watches
        arena = self._arena
        cbase = self._cbase
        csize = self._csize
        assign = self._assign
        level = self._level
        reason = self._reason
        trail = self._trail
        dlevel = len(self._trail_lim)
        qhead = self._qhead
        ntrail = len(trail)
        props = 0
        while qhead < ntrail:
            ilit = trail[qhead]
            qhead += 1
            props += 1
            false_lit = ilit ^ 1
            wl = watches[false_lit]
            i = 0
            j = 0
            n = len(wl)
            while i < n:
                ci = wl[i]
                i += 1
                base = cbase[ci]
                # make sure false_lit is at slot base+1
                first = arena[base]
                if first == false_lit:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = false_lit
                if assign[first >> 1] ^ (first & 1) == 1:  # satisfied
                    wl[j] = ci
                    j += 1
                    continue
                # search replacement watch (binary clauses have none and
                # skip straight to the unit/conflict path)
                size = csize[ci]
                if size > 2:
                    moved = False
                    for k in range(base + 2, base + size):
                        lk = arena[k]
                        if assign[lk >> 1] ^ (lk & 1) != 0:  # not false
                            arena[base + 1] = lk
                            arena[k] = false_lit
                            watches[lk].append(ci)
                            moved = True
                            break
                    if moved:
                        continue
                # clause is unit or conflicting
                wl[j] = ci
                j += 1
                var = first >> 1
                val = assign[var]
                if val < 0:
                    assign[var] = 1 - (first & 1)
                    level[var] = dlevel
                    reason[var] = ci
                    trail.append(first)
                    ntrail += 1
                elif val ^ (first & 1) == 0:
                    # conflict: compact remaining watches and report
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    self._qhead = ntrail
                    self.stats["propagations"] += props
                    return arena[base : base + size]
            del wl[j:]
        self._qhead = qhead
        self.stats["propagations"] += props
        return None

    def _theory_check(self) -> Optional[list[int]]:
        """Feed newly assigned theory literals to the theory solver.

        Returns a conflict as a *clause* of internal literals, or None.
        """
        theory = self.theory
        if theory is None:
            self._thead = len(self._trail)
            return None
        trail = self._trail
        # membership in the theory's atom registry is the whole test; ask
        # the dict directly when the theory exposes one (saves a Python
        # call per trail literal on this warm path)
        atoms = getattr(theory, "_atoms", None)
        if not isinstance(atoms, dict):
            atoms = None
        is_theory_var = theory.is_theory_var
        while self._thead < len(trail):
            idx = self._thead
            ilit = trail[idx]
            self._thead += 1
            var = ilit >> 1
            if atoms is not None:
                if var not in atoms:
                    continue
            elif not is_theory_var(var):
                continue
            self._theory_trail.append(idx)
            conflict = theory.assert_literal(self._to_external(ilit))
            if conflict is not None:
                self.stats["theory_conflicts"] += 1
                # theory reports true literals; conflict clause negates them
                return [self._to_internal(-l) for l in conflict]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        if not self.enable_vsids:
            return
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inv = 1e-100
            act = self._activity
            for v in range(1, self._nvars + 1):
                act[v] *= inv
            self._var_inc *= inv

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """1UIP analysis. Returns (learned clause, backjump level)."""
        level = self._level
        reason = self._reason
        arena = self._arena
        cbase = self._cbase
        csize = self._csize
        seen = self._seen  # all-False between calls; cleared before return
        touched: list[int] = []
        learned: list[int] = [0]  # slot 0 for the asserting literal
        counter = 0
        cur_level = self._decision_level()
        p = -1  # internal lit being resolved on
        trail = self._trail
        index = len(trail) - 1
        reason_clause: Optional[list[int]] = conflict
        while True:
            assert reason_clause is not None
            for q in reason_clause:
                if p != -1 and q == p:
                    continue
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = True
                touched.append(var)
                self._bump(var)
                if level[var] >= cur_level:
                    counter += 1
                else:
                    learned.append(q)
            # walk back to next marked literal on the trail
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            var = p >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = p ^ 1
                break
            ri = reason[var]
            if ri == -1:
                raise AssertionError("resolving on a decision literal")
            base = cbase[ri]
            reason_clause = arena[base : base + csize[ri]]
        for var in touched:
            seen[var] = False
        # conflict-clause minimization: drop literals implied by the rest
        marked = {q >> 1 for q in learned[1:]}
        kept = [learned[0]]
        for q in learned[1:]:
            ri = reason[q >> 1]
            if ri != -1:
                base = cbase[ri]
                for idx in range(base, base + csize[ri]):
                    r = arena[idx]
                    if r == q ^ 1:
                        continue
                    if (r >> 1) not in marked and level[r >> 1] != 0:
                        break
                else:
                    continue  # dominated: implied by other learned literals
            kept.append(q)
        learned = kept
        if len(learned) == 1:
            return learned, 0
        # backjump to the second-highest level in the clause
        max_i = 1
        for i in range(2, len(learned)):
            if level[learned[i] >> 1] > level[learned[max_i] >> 1]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, level[learned[1] >> 1]

    def _lbd(self, clause: list[int]) -> int:
        """Literal block distance: distinct decision levels in the clause."""
        level = self._level
        return len({level[q >> 1] for q in clause})

    def _record_learned(self, learned: list[int]) -> None:
        self.stats["learned"] += 1
        if len(learned) == 1:
            self._enqueue(learned[0], -1)
            return
        ci = self._push_clause(learned, self._lbd(learned))
        self._enqueue(learned[0], ci)

    def _reduce_learned(self) -> None:
        """Drop unhelpful learned clauses when the DB grows too large.

        Scored by LBD (literal block distance — the number of distinct
        decision levels in the clause when it was learned; Glucose's
        quality measure): *glue* clauses (LBD <= 2), binary clauses and
        clauses currently locked as propagation reasons always survive;
        the rest are ranked by (LBD, size) and the worst half beyond the
        quota is dropped, then the learned tail of the arena is compacted
        in place.
        """
        keep_from = self._learned_from
        n_clauses = len(self._cbase)
        n_learned = n_clauses - keep_from
        if n_learned <= self._max_learnts:
            return
        reason = self._reason
        csize = self._csize
        clbd = self._clbd
        locked = {
            reason[ilit >> 1]
            for ilit in self._trail
            if reason[ilit >> 1] != -1
        }
        by_score = sorted(
            range(keep_from, n_clauses),
            key=lambda ci: (clbd[ci], csize[ci]),
        )
        quota = int(self._max_learnts // 2)
        dropped: set[int] = set()
        for rank, ci in enumerate(by_score):
            if (
                ci in locked
                or csize[ci] <= 2
                or clbd[ci] <= 2
                or rank < quota
            ):
                continue
            dropped.add(ci)
        if not dropped:
            # every clause is protected: loosen the cap so the check does
            # not fire again immediately
            self._max_learnts *= self._learnt_bump
            return
        # compact the learned tail of the arena + remap clause indices
        arena = self._arena
        cbase = self._cbase
        write = cbase[keep_from]
        remap: dict[int, int] = {}
        new_cbase = cbase[:keep_from]
        new_csize = csize[:keep_from]
        new_clbd = clbd[:keep_from]
        for ci in range(keep_from, n_clauses):
            if ci in dropped:
                continue
            size = csize[ci]
            base = cbase[ci]
            remap[ci] = len(new_cbase)
            new_cbase.append(write)
            new_csize.append(size)
            new_clbd.append(clbd[ci])
            arena[write : write + size] = arena[base : base + size]
            write += size
        del arena[write:]
        self._cbase = new_cbase
        self._csize = new_csize
        self._clbd = new_clbd
        for lit in range(len(self._watches)):
            wl = self._watches[lit]
            out = []
            for ci in wl:
                if ci < keep_from:
                    out.append(ci)
                else:
                    new_ci = remap.get(ci)
                    if new_ci is not None:
                        out.append(new_ci)
            self._watches[lit] = out
        for var in range(1, self._nvars + 1):
            ri = reason[var]
            if ri >= keep_from:
                reason[var] = remap.get(ri, -1)
        self.stats["learned_dropped"] += len(dropped)
        self._max_learnts *= self._learnt_bump

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> int:
        """Pick an unassigned variable by activity; 0 when all assigned.

        Entries in the order heap may be stale (the variable was assigned, or
        its activity changed since the entry was pushed). Every unassigned
        variable always has at least one entry — one is pushed at creation and
        on every unassignment — so popping until an unassigned variable
        appears is safe; a stale priority only weakens the heuristic.
        """
        order = self._order
        assign = self._assign
        heap_act = self._heap_act
        heap_live = self._heap_live
        pop = heapq.heappop
        while order:
            prio, var = pop(order)
            if heap_act[var] == -prio:
                heap_live[var] = False
            if assign[var] == _UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        on_restart: Optional[Callable[[], None]] = None,
        assumptions: Sequence[int] = (),
    ) -> Result:
        """Decide the clause set, optionally under ``assumptions``.

        Assumptions are signed external literals installed as the first
        decision levels of the search (MiniSat-style). When the formula is
        unsatisfiable *under the assumptions* (but not outright), the
        result is UNSAT and :meth:`core` names a subset of the assumptions
        that already conflicts; the solver itself stays usable.
        """
        self._core = None
        if not self._ok:
            self._core = []
            return Result.UNSAT
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            self._core = []
            return Result.UNSAT
        tconf = self._theory_check()
        if tconf is not None:
            self._ok = False
            self._core = []
            return Result.UNSAT

        nvars = self._nvars
        assume: list[int] = []
        for lit in assumptions:
            if lit == 0 or lit > nvars or lit < -nvars:
                raise ValueError(f"assumption literal {lit} out of range")
            assume.append((lit << 1) if lit > 0 else ((-lit) << 1) | 1)

        deadline = time.monotonic() + max_seconds if max_seconds else None
        restart_idx = 1
        budget = self._restart_base * luby(restart_idx)
        conflicts_here = 0
        # conflict budgets are per-call, like wall budgets: an incremental
        # caller re-checking the same solver grants each check its own
        # allowance, matching the fresh-start backends' semantics
        conflicts_at_entry = self.stats["conflicts"]

        while True:
            conflict = self._propagate()
            if conflict is None:
                conflict = self._theory_check()
                if conflict is None and self._qhead < len(self._trail):
                    continue  # theory OK but BCP has new work? (defensive)
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                # A theory conflict may involve only literals below the
                # current decision level (e.g. assigned during re-propagation
                # after a backjump); 1UIP analysis needs the conflict to sit
                # at the top level, so fall back there first.
                top = max(
                    (self._level[q >> 1] for q in conflict), default=0
                )
                if top == 0:
                    self._ok = False
                    self._core = []
                    return Result.UNSAT
                if top < self._decision_level():
                    self._cancel_until(top)
                learned, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                self._record_learned(learned)
                self._var_inc /= self._var_decay
                continue
            # no conflict
            if max_conflicts is not None and (
                self.stats["conflicts"] - conflicts_at_entry >= max_conflicts
            ):
                self._cancel_until(0)
                return Result.UNKNOWN
            if deadline is not None and time.monotonic() > deadline:
                self._cancel_until(0)
                return Result.UNKNOWN
            if self.enable_restarts and conflicts_here >= budget:
                conflicts_here = 0
                restart_idx += 1
                budget = self._restart_base * luby(restart_idx)
                self.stats["restarts"] += 1
                self._cancel_until(0)
                self._reduce_learned()
                if on_restart is not None:
                    on_restart()
                continue
            if not self.enable_restarts and conflicts_here >= budget:
                conflicts_here = 0  # still trim the clause DB periodically
                self._reduce_learned()
            # (re-)install assumptions as the lowest decision levels; a
            # backjump or restart may have cancelled some of them
            if len(self._trail_lim) < len(assume):
                installed = False
                while len(self._trail_lim) < len(assume):
                    ilit = assume[len(self._trail_lim)]
                    val = self._assign[ilit >> 1]
                    if val >= 0:
                        if val ^ (ilit & 1) == 1:
                            # already true: open an empty level so later
                            # assumptions keep their level indices
                            self._trail_lim.append(len(self._trail))
                            continue
                        # assumption falsified by the others + the clauses
                        self._core = self._final_core(ilit)
                        self._cancel_until(0)
                        return Result.UNSAT
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(ilit, -1)
                    installed = True
                    break
                if installed:
                    continue  # propagate the newly installed assumption
            var = self._decide()
            if var == 0:
                return Result.SAT  # full assignment, theory-consistent
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            ilit = (var << 1) | (1 if self._phase[var] == 0 else 0)
            self._enqueue(ilit, -1)

    def _final_core(self, false_ilit: int) -> list[int]:
        """Assumptions implying the negation of the failed assumption.

        ``false_ilit`` is an assumption literal found false while being
        installed. Walking the reason closure of its (opposite) assignment
        back to the decision literals — which, below the assumption
        prefix, are exactly the earlier assumptions — yields a subset of
        the assumptions that is jointly unsatisfiable with the clauses
        (MiniSat's ``analyzeFinal``).
        """
        core = [self._to_external(false_ilit)]
        if not self._trail_lim:
            return core
        seen = self._seen
        level = self._level
        reason = self._reason
        arena = self._arena
        cbase = self._cbase
        csize = self._csize
        trail = self._trail
        var0 = false_ilit >> 1
        touched = [var0]
        seen[var0] = True
        limit = self._trail_lim[0]
        for i in range(len(trail) - 1, limit - 1, -1):
            v = trail[i] >> 1
            if not seen[v]:
                continue
            ri = reason[v]
            if ri == -1:
                core.append(self._to_external(trail[i]))
            else:
                base = cbase[ri]
                for k in range(base, base + csize[ri]):
                    qv = arena[k] >> 1
                    if level[qv] > 0 and not seen[qv]:
                        seen[qv] = True
                        touched.append(qv)
        for v in touched:
            seen[v] = False
        return core

    def core(self) -> Optional[list[int]]:
        """After an UNSAT answer: assumptions that jointly conflict.

        ``[]`` means the clauses are unsatisfiable on their own (no
        assumption needed); ``None`` means the last answer was not UNSAT.
        """
        return self._core

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> Optional[bool]:
        v = self._assign[var]
        if v == _UNASSIGNED:
            return None
        return bool(v)
