"""Integer difference-logic theory solver.

Atoms have the form ``x - y <= c`` over integer variables. A set of such
constraints is satisfiable iff the *constraint graph* — an edge ``y -> x``
with weight ``c`` per constraint — has no negative-weight cycle. This module
maintains that graph incrementally as the SAT core asserts and retracts
literals, detecting conflicts eagerly and producing *explanations* (the set
of asserted literals forming the negative cycle).

The implementation follows Cotton & Maler (2006): keep a feasible potential
function ``pi`` with ``pi(x) - pi(y) <= c`` for every active edge. Asserting
an edge that violates its inequality triggers a Dijkstra pass over *reduced
costs* (non-negative by feasibility) that either repairs ``pi`` or walks back
to the new edge's tail, exhibiting a negative cycle.

A negated atom ``not (x - y <= c)`` is the atom ``y - x <= -c - 1`` (integer
semantics), so every literal contributes exactly one edge.

Backtracking pops edges LIFO. The potential function is *kept* across pops:
a potential feasible for a superset of edges is feasible for any subset.

Model values: after a successful search, ``value(x) = pi(x)`` satisfies every
active constraint directly.
"""
from __future__ import annotations

import heapq
from typing import Optional

__all__ = ["DifferenceTheory"]


class _Edge:
    __slots__ = ("src", "dst", "weight", "lit")

    def __init__(self, src: int, dst: int, weight: int, lit: int):
        self.src = src
        self.dst = dst
        self.weight = weight
        self.lit = lit


class DifferenceTheory:
    """DPLL(T) plugin deciding conjunctions of difference constraints.

    Variables are dense integer ids managed by :meth:`var_id`. Atoms are
    registered up front via :meth:`add_atom`, binding a SAT variable to the
    constraint ``x - y <= c``.
    """

    def __init__(self) -> None:
        self._var_ids: dict[str, int] = {}
        self._pi: list[int] = []
        # atom registry: sat var -> (x, y, c) meaning x - y <= c
        self._atoms: dict[int, tuple[int, int, int]] = {}
        self._one_sided: set[int] = set()
        # adjacency: node -> list of edge indices (active ones only)
        self._out: list[list[int]] = []
        self._edges: list[_Edge] = []
        self.stats = {"asserts": 0, "repairs": 0, "conflicts": 0}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def var_id(self, name: str) -> int:
        """Dense id for the integer variable ``name`` (created on demand)."""
        vid = self._var_ids.get(name)
        if vid is None:
            vid = len(self._var_ids)
            self._var_ids[name] = vid
            self._pi.append(0)
            self._out.append([])
        return vid

    def add_atom(
        self, sat_var: int, x: str, y: str, c: int, one_sided: bool = False
    ) -> None:
        """Bind SAT variable ``sat_var`` to the atom ``x - y <= c``.

        One-sided atoms impose no constraint when asserted *false*; see
        :func:`repro.smt.ast.OneSidedLt` for when this is sound.
        """
        self._atoms[sat_var] = (self.var_id(x), self.var_id(y), c)
        if one_sided:
            self._one_sided.add(sat_var)

    def is_theory_var(self, var: int) -> bool:
        return var in self._atoms

    # ------------------------------------------------------------------
    # Assertion / retraction (called by the SAT core)
    # ------------------------------------------------------------------
    def assert_literal(self, lit: int) -> Optional[list[int]]:
        """Assert a signed literal over a registered atom.

        Returns ``None`` on success, or the conflict explanation: a list of
        currently-asserted literals (including ``lit``) whose conjunction is
        theory-inconsistent. The assertion is recorded either way; the SAT
        core is expected to backtrack past it after a conflict.
        """
        if lit < 0 and -lit in self._one_sided:
            # one-sided atom asserted false: no theory content; record a
            # placeholder so assertion counts stay aligned with the SAT core
            self._edges.append(None)
            return None
        x, y, c = self._atoms[abs(lit)]
        if lit > 0:
            src, dst, weight = y, x, c  # x - y <= c : edge y -> x
        else:
            src, dst, weight = x, y, -c - 1  # y - x <= -c - 1
        self.stats["asserts"] += 1
        edge = _Edge(src, dst, weight, lit)
        ei = len(self._edges)
        self._edges.append(edge)
        self._out[src].append(ei)
        pi = self._pi
        if pi[dst] - pi[src] <= weight:
            return None  # already feasible
        return self._repair(edge)

    def pop_to(self, n_asserted: int) -> None:
        """Retract edges so only the first ``n_asserted`` assertions remain."""
        while len(self._edges) > n_asserted:
            edge = self._edges.pop()
            if edge is None:
                continue  # one-sided negative assertion: nothing to undo
            removed = self._out[edge.src].pop()
            assert removed == len(self._edges)

    # ------------------------------------------------------------------
    # Feasibility repair (Cotton–Maler)
    # ------------------------------------------------------------------
    def _repair(self, new_edge: _Edge) -> Optional[list[int]]:
        """Restore potential feasibility after adding ``new_edge``.

        Let the new edge be ``u -> v`` with weight ``w`` and let
        ``delta = pi(u) + w - pi(v) < 0``. Candidate new potentials are
        ``pi'(z) = min(pi(z), pi(u) + w + D(v, z))`` where ``D`` is the
        shortest-path distance from ``v`` using current edge weights. With
        reduced costs ``rc(a->b) = pi(a) + w(a,b) - pi(b) >= 0`` (feasible for
        all old edges) Dijkstra from ``v`` computes
        ``dr(z) = D(v, z) + pi(v) - pi(z) >= 0``; node ``z`` needs updating
        iff ``dr(z) < -delta``. Reaching ``u`` with ``dr(u) < -delta`` means
        ``D(v, u) + w < pi(v) - pi(u) - w + ... < 0`` — a negative cycle
        through the new edge; the explanation is the Dijkstra path plus the
        new edge's literal.
        """
        self.stats["repairs"] += 1
        pi = self._pi
        u, v, w = new_edge.src, new_edge.dst, new_edge.weight
        delta = pi[u] + w - pi[v]  # < 0
        bound = -delta
        dist: dict[int, int] = {v: 0}
        parent_edge: dict[int, _Edge] = {}
        settled: set[int] = set()
        heap: list[tuple[int, int]] = [(0, v)]
        out = self._out
        edges = self._edges
        updates: list[tuple[int, int]] = []
        while heap:
            dr, node = heapq.heappop(heap)
            if node in settled or dr >= bound:
                continue
            if node == u:
                # negative cycle: path v ->* u plus edge u -> v
                explanation = [new_edge.lit]
                cur = u
                while cur != v:
                    e = parent_edge[cur]
                    explanation.append(e.lit)
                    cur = e.src
                self.stats["conflicts"] += 1
                return explanation
            settled.add(node)
            updates.append((node, pi[node] + delta + dr))
            base = pi[node]
            for ei in out[node]:
                e = edges[ei]
                if e is new_edge:
                    continue
                nxt = e.dst
                if nxt in settled:
                    continue
                ndr = dr + base + e.weight - pi[nxt]
                if ndr < bound and ndr < dist.get(nxt, bound):
                    dist[nxt] = ndr
                    parent_edge[nxt] = e
                    heapq.heappush(heap, (ndr, nxt))
        # no negative cycle: commit the repaired potentials
        for node, val in updates:
            pi[node] = val
        return None

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def value(self, name: str) -> int:
        """Model value of an integer variable under the current potentials."""
        vid = self._var_ids.get(name)
        if vid is None:
            return 0
        return self._pi[vid]
