"""Result kinds and exceptions for the SMT substrate."""
from __future__ import annotations

import enum


class Result(enum.Enum):
    """Outcome of a solver query, mirroring SMT-LIB check-sat answers."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        raise TypeError(
            "Result is tri-valued; compare against Result.SAT explicitly"
        )


class SmtError(Exception):
    """Base class for all solver errors."""


class SortError(SmtError):
    """An expression was built from operands of incompatible sorts."""


class BudgetExceeded(SmtError):
    """A conflict or wall-clock budget was exhausted mid-solve."""


class ModelUnavailable(SmtError):
    """A model was requested but the last query did not return SAT."""
