"""Pure-Python SMT substrate (z3py stand-in).

Decides the fragment IsoPredict's encodings live in: Boolean structure over
Boolean variables, finite-domain (enum) equalities, and integer
difference-logic atoms. See DESIGN.md §2 for the substitution rationale.
"""
from .ast import (
    And,
    AtMostOne,
    Bool,
    BoolVal,
    Distinct,
    EnumSort,
    EnumVar,
    ExactlyOne,
    Expr,
    FALSE,
    Iff,
    Implies,
    Int,
    IntTerm,
    Not,
    OneSidedGt,
    OneSidedLt,
    Or,
    TRUE,
)
from .errors import BudgetExceeded, ModelUnavailable, Result, SmtError, SortError
from .sat import SatSolver, luby
from .difference import DifferenceTheory
from .solver import Model, Solver
from .backends import (
    BackendSpec,
    BackendUnavailable,
    DimacsProcessBackend,
    InProcessBackend,
    PortfolioBackend,
    SolverBackend,
    make_backend,
)

__all__ = [
    "And",
    "AtMostOne",
    "BackendSpec",
    "BackendUnavailable",
    "Bool",
    "BoolVal",
    "BudgetExceeded",
    "DimacsProcessBackend",
    "InProcessBackend",
    "PortfolioBackend",
    "SolverBackend",
    "make_backend",
    "DifferenceTheory",
    "Distinct",
    "EnumSort",
    "EnumVar",
    "ExactlyOne",
    "Expr",
    "FALSE",
    "Iff",
    "Implies",
    "Int",
    "IntTerm",
    "Model",
    "ModelUnavailable",
    "Not",
    "OneSidedGt",
    "OneSidedLt",
    "Or",
    "Result",
    "SatSolver",
    "SmtError",
    "Solver",
    "SortError",
    "TRUE",
    "luby",
]
