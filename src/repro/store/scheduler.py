"""Deterministic schedulers driving multi-session applications.

Session programs are plain Python callables ``program(client, rng)`` that
issue ``get``/``put``/``commit``/``rollback`` calls. Each program runs in
its own thread, but threads execute strictly one at a time under a
grant/yield handshake, so a given (seed, program set) always produces the
same interleaving — the determinism §7.1 asks for.

Two granularities:

* :class:`SerialScheduler` — context-switches at *transaction* boundaries,
  matching MonkeyDB's serial transaction execution. Used for recording
  observed executions, random weak-isolation exploration, and validation
  replay (with an explicit turn order).
* :class:`InterleavedScheduler` — context-switches before every store
  *operation* with latest-committed reads: the stand-in for running the
  benchmarks on MySQL under read committed (Table 7; DESIGN.md §2).
"""
from __future__ import annotations

import random
import threading
from typing import Callable, Optional, Sequence

from ..history.model import History
from .client import Client, SessionHalted
from .kvstore import DataStore
from .policies import ReadPolicy

__all__ = ["SerialScheduler", "InterleavedScheduler"]

Program = Callable[[Client, random.Random], None]


class _SessionThread:
    """One session's thread plus its handshake state."""

    def __init__(self, name: str, target: Callable[[], None]):
        self.name = name
        self.go = threading.Event()
        self.done = threading.Event()
        self.finished = False
        self.halted = False
        self.halt_requested = False
        self.error: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._run, args=(target,), name=f"session-{name}", daemon=True
        )

    def _run(self, target: Callable[[], None]) -> None:
        self.go.wait()
        try:
            if self.halt_requested:
                raise SessionHalted(self.name)
            target()
        except SessionHalted:
            self.halted = True
        except BaseException as exc:  # surfaced by the scheduler
            self.error = exc
        finally:
            self.finished = True
            self.done.set()

    def grant(self) -> None:
        """Let the session run until its next yield point."""
        self.done.clear()
        self.go.set()
        self.done.wait()

    def start(self) -> None:
        self.thread.start()


class _Sync:
    """The client-side of the handshake; injected into each Client."""

    def __init__(self, per_operation: bool):
        self._per_operation = per_operation
        self._threads: dict[str, _SessionThread] = {}
        self._halt: set[str] = set()

    def register(self, session: str, thread: _SessionThread) -> None:
        self._threads[session] = thread

    def request_halt(self, session: str) -> None:
        self._halt.add(session)
        self._threads[session].halt_requested = True

    def _pause(self, session: str) -> None:
        st = self._threads[session]
        st.go.clear()
        st.done.set()
        st.go.wait()
        if session in self._halt:
            raise SessionHalted(session)

    def op_point(self, session: str) -> None:
        if self._per_operation:
            self._pause(session)

    def txn_boundary(self, session: str) -> None:
        if not self._per_operation:
            self._pause(session)


class _BaseScheduler:
    per_operation = False

    def __init__(
        self,
        store: DataStore,
        programs: dict[str, Program],
        policy_factory: Callable[[str], ReadPolicy],
        seed: int = 0,
    ):
        self.store = store
        self.seed = seed
        self._sync = _Sync(per_operation=self.per_operation)
        self.clients: dict[str, Client] = {}
        self._threads: dict[str, _SessionThread] = {}
        for session, program in programs.items():
            policy = policy_factory(session)
            client = Client(store, session, policy, sync=self._sync)
            self.clients[session] = client
            rng = random.Random(f"{seed}:{session}")
            thread = _SessionThread(
                session, lambda c=client, r=rng, p=program: self._body(c, r, p)
            )
            self._sync.register(session, thread)
            self._threads[session] = thread

    @staticmethod
    def _body(client: Client, rng: random.Random, program: Program) -> None:
        program(client, rng)
        if client.in_transaction:
            raise RuntimeError(
                f"session {client.session!r} program ended inside a "
                "transaction; programs must commit or rollback"
            )

    # -- turn selection -------------------------------------------------
    def _runnable(self) -> list[str]:
        return sorted(
            s for s, t in self._threads.items() if not t.finished
        )

    def _next_session(self, rng: random.Random) -> Optional[str]:
        runnable = self._runnable()
        if not runnable:
            return None
        return rng.choice(runnable)

    def run(self) -> History:
        """Drive every session to completion; returns the recorded history."""
        rng = random.Random(f"turns:{self.seed}")
        for thread in self._threads.values():
            thread.start()
        while True:
            session = self._next_session(rng)
            if session is None:
                break
            self._threads[session].grant()
            error = self._threads[session].error
            if error is not None:
                self._halt_all()
                raise error
        return self.store.history()

    def _halt_all(self) -> None:
        for session, thread in self._threads.items():
            if not thread.finished:
                self._sync.request_halt(session)
                thread.grant()


class SerialScheduler(_BaseScheduler):
    """Transaction-at-a-time execution with a seeded (or dictated) order.

    ``turn_order`` optionally fixes the sequence of sessions granted a
    transaction turn (validation replay); when exhausted, remaining sessions
    are *halted*, implementing §5's boundary-prefix termination.
    """

    per_operation = False

    def __init__(
        self,
        store: DataStore,
        programs: dict[str, Program],
        policy_factory: Callable[[str], ReadPolicy],
        seed: int = 0,
        turn_order: Optional[Sequence[str]] = None,
    ):
        super().__init__(store, programs, policy_factory, seed)
        self._turn_order = list(turn_order) if turn_order is not None else None
        self._turn_index = 0

    def _next_session(self, rng: random.Random) -> Optional[str]:
        if self._turn_order is None:
            return super()._next_session(rng)
        while self._turn_index < len(self._turn_order):
            session = self._turn_order[self._turn_index]
            self._turn_index += 1
            if session in self._threads and not self._threads[session].finished:
                return session
        # dictated turns exhausted: halt whatever is still running
        self._halt_all()
        return None

    def run(self) -> History:
        """Like the base run, but a dictated turn means *one commit*.

        An application-level abort (rollback) ends a thread turn without
        committing; validation's turn order is expressed in committed
        transactions, so the turn is re-granted until the session commits
        or finishes (§6: aborted transactions rewind and re-execute).
        """
        if self._turn_order is None:
            return super().run()
        rng = random.Random(f"turns:{self.seed}")
        for thread in self._threads.values():
            thread.start()
        while True:
            session = self._next_session(rng)
            if session is None:
                break
            commits_before = self.store.next_txn_index(session)
            attempts = 0
            while (
                not self._threads[session].finished
                and self.store.next_txn_index(session) == commits_before
            ):
                attempts += 1
                if attempts > 1000:
                    raise RuntimeError(
                        f"session {session!r} aborts without progress"
                    )
                self._threads[session].grant()
                error = self._threads[session].error
                if error is not None:
                    self._halt_all()
                    raise error
        return self.store.history()


class InterleavedScheduler(_BaseScheduler):
    """Statement-level interleaving (the realistic rc executor).

    Context-switches between SQL statements with probability
    ``switch_probability``, staying with the running session otherwise —
    a knob for the effective concurrency overlap of a real database: long
    transactions (TPC-C new-order) overlap often, short ones rarely, which
    reproduces Table 7's MySQL column (only TPC-C fails assertions).
    """

    per_operation = True

    def __init__(
        self,
        store: DataStore,
        programs: dict[str, Program],
        policy_factory: Callable[[str], ReadPolicy],
        seed: int = 0,
        switch_probability: float = 0.05,
    ):
        super().__init__(store, programs, policy_factory, seed)
        self.switch_probability = switch_probability
        self._current: Optional[str] = None

    def _next_session(self, rng: random.Random) -> Optional[str]:
        runnable = self._runnable()
        if not runnable:
            return None
        if (
            self._current in runnable
            and rng.random() >= self.switch_probability
        ):
            return self._current
        self._current = rng.choice(runnable)
        return self._current
