"""The versioned key–value store and its committed-transaction log."""
from __future__ import annotations

import itertools
from typing import Optional

from ..history.events import Event, ReadEvent, WriteEvent
from ..history.model import History, INIT_TID, Transaction

__all__ = ["DataStore"]


class DataStore:
    """A transactional key–value store that remembers every version.

    Unlike a production store, every committed write is retained together
    with its writer, because weak-isolation read policies may legally return
    *old* versions and the recorder needs the full write–read relation.
    Transactions execute one at a time (the schedulers guarantee mutual
    exclusion), so no internal locking is needed.
    """

    def __init__(self, initial: Optional[dict[str, object]] = None):
        self._initial: dict[str, object] = dict(initial or {})
        # committed transactions in real-time commit order
        self._commit_log: list[Transaction] = []
        self._writes: dict[str, dict[str, object]] = {}  # tid -> key -> value
        self._writers_by_key: dict[str, list[str]] = {}
        self._session_positions: dict[str, int] = {}
        self._session_counts: dict[str, int] = {}
        self._tid_counter = itertools.count(1)
        self._history_cache: Optional[History] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def initial_values(self) -> dict[str, object]:
        return dict(self._initial)

    def next_tid(self) -> str:
        return f"t{next(self._tid_counter)}"

    def committed(self) -> tuple[Transaction, ...]:
        """Committed transactions in real-time commit order."""
        return tuple(self._commit_log)

    def writers_of(self, key: str) -> list[str]:
        """Committed writers of ``key``, oldest first, including ``t0``."""
        return [INIT_TID] + self._writers_by_key.get(key, [])

    def value_written(self, tid: str, key: str) -> object:
        """The value ``tid``'s last write put in ``key``."""
        if tid == INIT_TID:
            return self._initial.get(key)
        return self._writes[tid][key]

    def wrote(self, tid: str, key: str) -> bool:
        if tid == INIT_TID:
            return True  # t0 implicitly writes every key
        return key in self._writes.get(tid, {})

    def latest_writer(self, key: str) -> str:
        writers = self._writers_by_key.get(key)
        return writers[-1] if writers else INIT_TID

    # ------------------------------------------------------------------
    # Session position bookkeeping (events are numbered per session)
    # ------------------------------------------------------------------
    def session_base_position(self, session: str) -> int:
        return self._session_positions.get(session, 0)

    def next_txn_index(self, session: str) -> int:
        return self._session_counts.get(session, 0)

    # ------------------------------------------------------------------
    # Commit path (called by Client)
    # ------------------------------------------------------------------
    def commit_transaction(
        self,
        tid: str,
        session: str,
        events: list[Event],
        writes: dict[str, object],
    ) -> Transaction:
        """Install a transaction's events and writes into the store.

        ``events`` must already be normalized (§2.1: own-write reads elided,
        only last writes) with final per-session positions assigned; the
        commit position is allocated here.
        """
        commit_pos = (
            max((e.pos for e in events), default=self.session_base_position(session) - 1)
            + 1
        )
        txn = Transaction(
            tid=tid,
            session=session,
            index=self.next_txn_index(session),
            events=tuple(events),
            commit_pos=commit_pos,
        )
        self._commit_log.append(txn)
        self._writes[tid] = dict(writes)
        for key in writes:
            self._writers_by_key.setdefault(key, []).append(tid)
        self._session_positions[session] = commit_pos + 1
        self._session_counts[session] = txn.index + 1
        for event in events:
            if isinstance(event, (ReadEvent, WriteEvent)):
                self._initial.setdefault(event.key, None)
        self._history_cache = None
        return txn

    def abort_transaction(self, session: str) -> None:
        """Aborted transactions leave no trace in the history (§2.1)."""
        self._history_cache = None  # no-op today; kept for symmetry

    # ------------------------------------------------------------------
    # History construction
    # ------------------------------------------------------------------
    def history(self) -> History:
        """The observed execution history recorded so far."""
        if self._history_cache is None:
            self._history_cache = History(
                self._commit_log, initial_values=self._initial
            )
        return self._history_cache

    def trial_history(self, extra: Transaction) -> History:
        """The history extended with a hypothetical (in-progress) transaction.

        Used by read policies to test whether a candidate write–read choice
        keeps the execution legal under the target isolation level.
        """
        return History(
            list(self._commit_log) + [extra], initial_values=self._initial
        )
