"""Transactional key–value data store (MonkeyDB equivalent).

The store plays MonkeyDB's three roles from the paper:

* **record** serializable observed executions (serial scheduler + latest
  -writer reads),
* **explore** weak behaviours randomly (serial scheduler + random
  isolation-legal reads — MonkeyDB's testing mode, §7.3),
* **replay** predicted executions for validation (directed reads, §5).

A fourth mode — the statement-interleaved read-committed executor — stands
in for MySQL in the Table 7 comparison (see DESIGN.md §2).
"""
from .backend import (
    DEFAULT_BACKEND,
    BackendRun,
    InMemoryBackend,
    StoreBackend,
    run_programs,
)
from .backends import (
    KNOWN_STORE_BACKENDS,
    ShardedBackend,
    ShardedStore,
    ShardRouter,
    SqliteBackend,
    make_store_backend,
    store_backend_spec,
)
from .kvstore import DataStore
from .client import Client, SessionHalted
from .policies import (
    DirectedReplayPolicy,
    LatestWriterPolicy,
    RandomIsolationPolicy,
    ReadContext,
    ReadPolicy,
    legal_writers,
)
from .scheduler import InterleavedScheduler, SerialScheduler

__all__ = [
    "BackendRun",
    "Client",
    "DEFAULT_BACKEND",
    "DataStore",
    "InMemoryBackend",
    "KNOWN_STORE_BACKENDS",
    "ShardRouter",
    "ShardedBackend",
    "ShardedStore",
    "SqliteBackend",
    "StoreBackend",
    "make_store_backend",
    "run_programs",
    "store_backend_spec",
    "DirectedReplayPolicy",
    "InterleavedScheduler",
    "LatestWriterPolicy",
    "RandomIsolationPolicy",
    "ReadContext",
    "ReadPolicy",
    "SerialScheduler",
    "SessionHalted",
    "legal_writers",
]
