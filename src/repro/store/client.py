"""Session client: the application-facing get/put/commit/rollback API.

Follows the paper's execution model (§2.1): every operation executes in a
transaction; an operation with no open transaction implicitly starts one;
``commit`` ends it. Reads of a key the transaction itself has written return
the buffered value and produce no event; only the last write to a key
becomes an event.
"""
from __future__ import annotations

import contextlib
from typing import Optional, TYPE_CHECKING

from ..history.events import Event, ReadEvent, WriteEvent
from ..history.model import Transaction
from .kvstore import DataStore

if TYPE_CHECKING:  # pragma: no cover
    from .policies import ReadPolicy

__all__ = ["Client", "SessionHalted"]


class SessionHalted(Exception):
    """Raised inside a session program when the scheduler stops it early.

    Validation replays only the prefix of the application up to the
    prediction boundary (§5); the scheduler halts the remaining sessions by
    making their next synchronization point raise this exception.
    """


class _NoSync:
    """Synchronization stub for single-threaded (direct) use."""

    def op_point(self, session: str) -> None:
        pass

    def txn_boundary(self, session: str) -> None:
        pass


class Client:
    """One session's connection to the data store."""

    def __init__(
        self,
        store: DataStore,
        session: str,
        policy: "ReadPolicy",
        sync=None,
    ):
        self._store = store
        self.session = session
        self._policy = policy
        self._sync = sync if sync is not None else _NoSync()
        self._tid: Optional[str] = None
        self._events: list[Event] = []
        self._writes: dict[str, object] = {}
        self._write_order: list[str] = []
        self._next_offset = 0
        self._stmt_depth = 0
        self.stats = {"reads": 0, "writes": 0, "commits": 0, "aborts": 0}

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def statement(self):
        """Group several operations into one scheduling unit.

        Mirrors per-statement atomicity of real stores: a SQL UPDATE's
        internal read-modify-write takes a row lock, so the interleaved
        scheduler must not context-switch inside it. The group synchronizes
        once on entry; inner operations skip their own sync points.
        """
        self._sync.op_point(self.session)
        self._stmt_depth += 1
        try:
            yield self
        finally:
            self._stmt_depth -= 1

    def _op_point(self) -> None:
        if self._stmt_depth == 0:
            self._sync.op_point(self.session)

    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self._tid is not None

    @property
    def current_tid(self) -> Optional[str]:
        return self._tid

    def _begin_if_needed(self) -> None:
        if self._tid is None:
            self._tid = self._store.next_tid()
            self._events = []
            self._writes = {}
            self._write_order = []
            self._next_offset = 0

    def _position(self) -> int:
        pos = self._store.session_base_position(self.session) + self._next_offset
        self._next_offset += 1
        return pos

    def _fragment(self, candidate: Optional[Event] = None) -> Transaction:
        """The in-progress transaction as a hypothetical committed one."""
        events = list(self._events)
        if candidate is not None:
            events.append(candidate)
        return Transaction(
            tid=self._tid,
            session=self.session,
            index=self._store.next_txn_index(self.session),
            events=tuple(events),
            commit_pos=self._store.session_base_position(self.session)
            + self._next_offset
            + 1,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> object:
        """Read ``key``; the read policy picks the writer."""
        self._op_point()
        self._begin_if_needed()
        self.stats["reads"] += 1
        if key in self._writes:
            # own-write read: not an event (§2.1)
            return self._writes[key]
        from .policies import ReadContext  # local import to avoid a cycle

        ctx = ReadContext(
            store=self._store,
            session=self.session,
            tid=self._tid,
            key=key,
            fragment_builder=self._fragment,
            position=self._store.session_base_position(self.session)
            + self._next_offset,
        )
        writer = self._policy.choose(ctx)
        value = self._store.value_written(writer, key)
        self._events.append(
            ReadEvent(pos=self._position(), key=key, writer=writer, value=value)
        )
        return value

    def put(self, key: str, value: object) -> None:
        """Write ``key``; visible to this transaction immediately."""
        self._op_point()
        self._begin_if_needed()
        self.stats["writes"] += 1
        if key in self._writes:
            # overwrite: drop the superseded write event, keep its order slot
            self._events = [
                e
                for e in self._events
                if not (isinstance(e, WriteEvent) and e.key == key)
            ]
        else:
            self._write_order.append(key)
        self._writes[key] = value
        self._events.append(
            WriteEvent(pos=self._position(), key=key, value=value)
        )

    def commit(self) -> Optional[str]:
        """Commit the open transaction; returns its tid (None if no-op)."""
        self._op_point()
        if self._tid is None:
            return None
        self.stats["commits"] += 1
        tid = self._tid
        txn = self._store.commit_transaction(
            tid, self.session, self._events, self._writes
        )
        self._tid = None
        self._policy.on_commit(tid, self.session, txn.index)
        self._sync.txn_boundary(self.session)
        return tid

    def rollback(self) -> None:
        """Abort the open transaction; it leaves no trace in the history."""
        self._op_point()
        if self._tid is None:
            return
        self.stats["aborts"] += 1
        self._store.abort_transaction(self.session)
        self._policy.on_abort(self._tid, self.session)
        self._tid = None
        self._sync.txn_boundary(self.session)
