"""Store backends: where an execution actually runs and gets recorded.

The paper's analysis is defined over *histories* recorded at the client
application's backend data store (§3) — nothing above the recording layer
should care which store that is. :class:`StoreBackend` captures the three
responsibilities the rest of the system needs from a backend:

* construct a store pre-loaded with an initial state,
* execute a set of session programs against it under a read policy and a
  (seeded or dictated) schedule,
* hand back the recorded :class:`~repro.history.model.History` plus a
  handle to the finished store for application-level assertion checks.

:class:`InMemoryBackend` wraps the repository's own
:class:`~repro.store.kvstore.DataStore` and schedulers — the MonkeyDB
equivalent. Sharded or multi-store backends are drop-in implementations of
the same protocol rather than a rewrite of the recording layer.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

from ..history.model import History
from .kvstore import DataStore
from .policies import ReadPolicy
from .scheduler import InterleavedScheduler, SerialScheduler

__all__ = [
    "BackendRun",
    "StoreBackend",
    "InMemoryBackend",
    "DEFAULT_BACKEND",
    "run_programs",
]

PolicyFactory = Callable[[str], ReadPolicy]


@dataclass
class BackendRun:
    """What one backend execution produced.

    ``store`` is the finished store handle, kept so callers can run
    MonkeyDB-style assertion checks over the final state; its concrete
    type is backend-specific (the in-memory backend hands back its
    :class:`DataStore`, the sharded backend a multi-shard router store),
    which is why the annotation is deliberately loose. ``meta`` is
    backend provenance (shard topology, archive row ids, …) merged into
    the recorded run's meta — it never affects the analysis.
    """

    history: History
    store: Any
    meta: dict = field(default_factory=dict)


@runtime_checkable
class StoreBackend(Protocol):
    """Protocol every store backend implements.

    ``execute`` runs ``programs`` (session name → program callable) against
    a fresh store seeded with ``initial``. ``interleaved`` selects
    statement-level interleaving (the realistic read-committed executor);
    ``turn_order`` dictates the serial schedule for validation replay.
    The two are mutually exclusive by construction: replay is always
    transaction-serial.
    """

    name: str

    def new_store(self, initial: Optional[dict] = None) -> DataStore:
        """A fresh store pre-loaded with ``initial`` (t0's writes)."""
        ...

    def execute(
        self,
        programs: dict[str, Callable],
        policy_factory: PolicyFactory,
        *,
        initial: Optional[dict] = None,
        seed: int = 0,
        interleaved: bool = False,
        turn_order: Optional[Sequence[str]] = None,
    ) -> BackendRun:
        """Run every program to completion; record and return the history."""
        ...


def run_programs(
    store: DataStore,
    programs: dict[str, Callable],
    policy_factory: PolicyFactory,
    *,
    seed: int = 0,
    interleaved: bool = False,
    turn_order: Optional[Sequence[str]] = None,
) -> History:
    """Drive ``programs`` to completion on ``store``; the shared executor.

    Every backend that executes in process (in-memory, sharded, sqlite)
    schedules sessions identically — backends differ in the store handle
    they build and in what they do with the finished run, so the
    scheduler-driving logic lives here once.
    """
    if interleaved and turn_order is not None:
        raise ValueError(
            "turn_order dictates a serial schedule; it cannot be "
            "combined with interleaved execution"
        )
    if interleaved:
        scheduler = InterleavedScheduler(
            store, programs, policy_factory, seed=seed
        )
    else:
        scheduler = SerialScheduler(
            store, programs, policy_factory, seed=seed,
            turn_order=turn_order,
        )
    return scheduler.run()


class InMemoryBackend:
    """The in-process :class:`DataStore` backend (MonkeyDB's three roles)."""

    name = "memory"

    #: Canonical selection spec (see ``repro.store.backends``).
    spec = "inmemory"

    def new_store(self, initial: Optional[dict] = None) -> DataStore:
        return DataStore(initial=initial)

    def execute(
        self,
        programs: dict[str, Callable],
        policy_factory: PolicyFactory,
        *,
        initial: Optional[dict] = None,
        seed: int = 0,
        interleaved: bool = False,
        turn_order: Optional[Sequence[str]] = None,
    ) -> BackendRun:
        store = self.new_store(initial)
        history = run_programs(
            store,
            programs,
            policy_factory,
            seed=seed,
            interleaved=interleaved,
            turn_order=turn_order,
        )
        return BackendRun(history=history, store=store)


#: The default backend used whenever a caller does not supply one.
DEFAULT_BACKEND = InMemoryBackend()
