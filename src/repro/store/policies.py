"""Read policies: who does a read read from?

The central helper is :func:`legal_writers`, the axiomatic legality check:
a candidate writer is legal when extending the current history with the
in-progress transaction (including the candidate write–read edge) keeps the
execution valid under the target isolation level. The paper's observation
that "it is always possible to keep executing while preserving causal or rc"
holds here because the latest committed writer is always legal.
"""
from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..history.events import Event, ReadEvent
from ..history.model import History, INIT_TID, Transaction
from ..isolation.checkers import is_valid_under
from ..isolation.levels import IsolationLevel
from .kvstore import DataStore

__all__ = [
    "ReadContext",
    "ReadPolicy",
    "LatestWriterPolicy",
    "RandomIsolationPolicy",
    "DirectedReplayPolicy",
    "legal_writers",
]


@dataclass
class ReadContext:
    """Everything a policy may inspect when choosing a read's writer."""

    store: DataStore
    session: str
    tid: str
    key: str
    position: int
    fragment_builder: Callable[[Optional[Event]], Transaction]

    def candidates(self) -> list[str]:
        """Committed writers of the key (including t0), excluding self."""
        return [
            w for w in self.store.writers_of(self.key) if w != self.tid
        ]

    def trial(self, writer: str) -> History:
        """History extended with the fragment reading ``key`` from ``writer``."""
        candidate = ReadEvent(
            pos=self.position,
            key=self.key,
            writer=writer,
            value=self.store.value_written(writer, self.key),
        )
        return self.store.trial_history(self.fragment_builder(candidate))


def legal_writers(ctx: ReadContext, level: IsolationLevel) -> list[str]:
    """Candidate writers whose choice keeps the execution valid under level."""
    return [
        w for w in ctx.candidates() if is_valid_under(ctx.trial(w), level)
    ]


class ReadPolicy:
    """Base read policy; subclasses implement :meth:`choose`."""

    def choose(self, ctx: ReadContext) -> str:
        raise NotImplementedError

    def on_commit(self, tid: str, session: str, index: int) -> None:
        """Hook invoked when the session commits ``tid`` at session ``index``."""

    def on_abort(self, tid: str, session: str) -> None:
        """Hook invoked when the session aborts ``tid``."""


class LatestWriterPolicy(ReadPolicy):
    """Always read the most recently committed writer.

    With the serial scheduler this yields serializable observed executions —
    exactly how the paper configures MonkeyDB to record traces (§6). It also
    serves as the read-committed snapshot rule of the interleaved "MySQL"
    executor (reads see the latest committed value).
    """

    def choose(self, ctx: ReadContext) -> str:
        return ctx.store.latest_writer(ctx.key)


class RandomIsolationPolicy(ReadPolicy):
    """MonkeyDB's testing mode: a uniformly random isolation-legal writer."""

    def __init__(self, level: IsolationLevel, rng: random.Random):
        self.level = level
        self.rng = rng
        self.stats = {"choices": 0, "non_latest": 0}

    def choose(self, ctx: ReadContext) -> str:
        legal = legal_writers(ctx, self.level)
        if not legal:
            # the latest committed writer is always a safe fallback
            return ctx.store.latest_writer(ctx.key)
        choice = self.rng.choice(legal)
        self.stats["choices"] += 1
        if choice != ctx.store.latest_writer(ctx.key):
            self.stats["non_latest"] += 1
        return choice


class DirectedReplayPolicy(ReadPolicy):
    """Validation's query engine (§5): steer reads to predicted writers.

    For the i-th read of the currently executing transaction, look up the
    i-th read event of the *predicted* transaction with the same tid and
    follow its writer if (1) the keys match, (2) that writer wrote the key
    in the validating execution too, and (3) the choice is legal under the
    weak isolation model. Otherwise the execution *diverges*: fall back to
    the observed writer when legal, else the latest legal writer.

    Transaction aborts rewind the per-transaction read cursor (§6).
    """

    def __init__(
        self,
        predicted: History,
        level: IsolationLevel,
        observed: Optional[History] = None,
    ):
        self.predicted = predicted
        self.level = level
        self.observed = observed
        self._cursor: dict[str, int] = {}  # tid -> next predicted read index
        self.divergences: list[dict] = []
        # The validating run allocates fresh tids in a different global
        # order, so transactions are matched by (session, index-in-session):
        # the deterministic application re-issues the same n-th transaction
        # per session (same RNG seed).
        self._predicted_by_slot = {
            (t.session, t.index): t for t in predicted.transactions()
        }
        self._observed_by_slot = {
            (t.session, t.index): t
            for t in (observed.transactions() if observed else ())
        }
        # predicted tids are the observed ones; report the slot's tid
        self._slot_of: dict[str, tuple[str, int]] = {}
        # (session, index) -> tid the *validating* run committed there
        self._validating_by_slot: dict[tuple[str, int], str] = {}

    # -- helpers -------------------------------------------------------
    def _slot(self, ctx: ReadContext) -> tuple[str, int]:
        slot = self._slot_of.get(ctx.tid)
        if slot is None:
            slot = (ctx.session, ctx.store.next_txn_index(ctx.session))
            self._slot_of[ctx.tid] = slot
        return slot

    def _predicted_read(self, ctx: ReadContext, index: int):
        txn = self._predicted_by_slot.get(self._slot(ctx))
        if txn is None or index >= len(txn.reads):
            return None
        return txn.reads[index]

    def _observed_read(self, ctx: ReadContext, index: int):
        txn = self._observed_by_slot.get(self._slot(ctx))
        if txn is None or index >= len(txn.reads):
            return None
        return txn.reads[index]

    def predicted_tid_for(self, ctx_session: str, index: int) -> Optional[str]:
        """Predicted-history tid occupying a (session, index) slot."""
        txn = self._predicted_by_slot.get((ctx_session, index))
        return None if txn is None else txn.tid

    def _validating_tid(self, predicted_tid: str) -> Optional[str]:
        """Validating-run tid for a predicted/observed-history tid."""
        if predicted_tid == INIT_TID:
            return INIT_TID
        source = (
            self.predicted
            if predicted_tid in self.predicted
            else self.observed
        )
        if source is None or predicted_tid not in source:
            return None
        txn = source.transaction(predicted_tid)
        return self._validating_by_slot.get((txn.session, txn.index))

    def choose(self, ctx: ReadContext) -> str:
        index = self._cursor.get(ctx.tid, 0)
        self._cursor[ctx.tid] = index + 1
        predicted = self._predicted_read(ctx, index)
        legal = set(legal_writers(ctx, self.level))
        if predicted is not None:
            predicted_writer = self._validating_tid(predicted.writer)
            # the three conditions of §5, checked in order so the
            # divergence record names the first one violated
            if predicted.key != ctx.key:
                reason = "key-mismatch"
            elif predicted_writer is None or not ctx.store.wrote(
                predicted_writer, ctx.key
            ):
                reason = "writer-missing"
            elif predicted_writer == ctx.tid:
                reason = "self-read"
            elif predicted_writer not in legal:
                reason = "isolation-illegal"
            else:
                return predicted_writer
            # a predicted read existed but could not be honoured (§5):
            # this is a genuine divergence
            self.divergences.append(
                {
                    "tid": ctx.tid,
                    "key": ctx.key,
                    "predicted": predicted.writer,
                    "reason": reason,
                }
            )
        # reads beyond the predicted prefix (the boundary transaction runs
        # in full) have nothing to match and are not divergence
        observed = self._observed_read(ctx, index)
        if observed is not None and observed.key == ctx.key:
            observed_writer = self._validating_tid(observed.writer)
            if observed_writer in legal:
                return observed_writer
        latest = ctx.store.latest_writer(ctx.key)
        if latest in legal:
            return latest
        # every candidate failed the legality check (should not happen:
        # the latest committed writer is always legal) — degrade gracefully
        return latest if not legal else sorted(legal)[0]

    def on_commit(self, tid: str, session: str, index: int) -> None:
        self._validating_by_slot[(session, index)] = tid

    def on_abort(self, tid: str, session: str) -> None:
        # rewind the predicted trace to the transaction's beginning (§6)
        self._cursor.pop(tid, None)
        self._slot_of.pop(tid, None)

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)
