"""Drop-in :class:`~repro.store.backend.StoreBackend` implementations.

PR 2 promised that "sharded or multi-store backends are drop-in
implementations rather than a rewrite of the recording layer"; this
package delivers the first two:

* :class:`ShardedBackend` — hash-routes keys across N independent shard
  stores, each with its own recorder, under a configurable cross-shard
  read policy (``"global"`` keeps whole-history read legality, ``"local"``
  judges legality per shard — the behaviour of a store with no cross-shard
  coordination);
* :class:`SqliteBackend` — persists every execution to a SQLite file, so
  recorded traces survive the process and reopen through
  :class:`repro.sources.SqliteTraceSource`.

Backends are selected by *spec* — a string the CLI, the campaign layer and
:class:`repro.api.Analysis` all accept::

    inmemory            the in-process DataStore (default)
    sharded:4           4 hash-routed shards, global read legality
    sharded:4:local     4 shards, per-shard read legality
    sqlite:PATH         persist executions to PATH
    sqlite:PATH?keep=N  same, retaining only the newest N executions

The invariant every backend must keep (enforced by
``tests/integration/test_backend_equivalence.py`` and the CI smoke job):
backends change *where* execution happens and what gets persisted, never
what the analysis sees — for any app and seed, a recording run on
``sharded:1`` or ``sqlite:…`` yields the same history, and therefore the
same prediction verdicts, as ``inmemory``.
"""
from __future__ import annotations

from typing import Optional, Union

from ..backend import DEFAULT_BACKEND, InMemoryBackend, StoreBackend
from .sharded import ShardedBackend, ShardedStore, ShardRouter, ShardStore
from .sqlite import (
    CompactionStats,
    SqliteBackend,
    compact_archive,
    count_executions,
    execution_content_hash,
    iter_executions,
    latest_execution_id,
    load_execution,
    prune_executions,
)

__all__ = [
    "CompactionStats",
    "KNOWN_STORE_BACKENDS",
    "ShardRouter",
    "ShardStore",
    "ShardedBackend",
    "ShardedStore",
    "SqliteBackend",
    "compact_archive",
    "count_executions",
    "execution_content_hash",
    "iter_executions",
    "latest_execution_id",
    "load_execution",
    "make_store_backend",
    "prune_executions",
    "store_backend_spec",
]

#: Store-backend kinds a spec string may name.
KNOWN_STORE_BACKENDS = ("inmemory", "sharded", "sqlite")

#: Accepted spellings of the in-memory default.
_INMEMORY_ALIASES = ("inmemory", "memory", "mem", "")

StoreBackendLike = Union[str, StoreBackend, None]


def make_store_backend(spec: StoreBackendLike) -> StoreBackend:
    """Construct (or pass through) a store backend from a selection spec.

    ``None`` and the in-memory aliases return the shared stateless
    :data:`~repro.store.backend.DEFAULT_BACKEND`; every other spec builds
    a fresh backend instance. Raises :class:`ValueError` on a spec that
    names no known backend, so callers (the CLI in particular) fail with
    one clean message before any execution starts.
    """
    if spec is None:
        return DEFAULT_BACKEND
    if isinstance(spec, StoreBackend) and not isinstance(spec, str):
        return spec
    if not isinstance(spec, str):
        raise ValueError(
            f"cannot build a store backend from {spec!r}; expected a spec "
            f"string naming one of {KNOWN_STORE_BACKENDS} or a StoreBackend"
        )
    text = spec.strip()
    kind, _, rest = text.partition(":")
    kind = kind.lower()
    if kind in _INMEMORY_ALIASES:
        if rest:
            raise ValueError(f"the in-memory backend takes no options: {spec!r}")
        return DEFAULT_BACKEND
    if kind == "sharded":
        return _parse_sharded(rest, spec)
    if kind == "sqlite":
        if not rest:
            raise ValueError(
                f"sqlite backend needs a file path: 'sqlite:PATH' (got {spec!r})"
            )
        return _parse_sqlite(rest, spec)
    raise ValueError(
        f"unknown store backend {spec!r}; expected one of "
        f"{KNOWN_STORE_BACKENDS} (e.g. 'sharded:4', 'sqlite:runs.sqlite')"
    )


def _parse_sharded(rest: str, spec: str) -> ShardedBackend:
    shards: Optional[int] = None
    cross = "global"
    for part in filter(None, rest.split(":")):
        if part in ("local", "global"):
            cross = part
        else:
            try:
                shards = int(part)
            except ValueError:
                raise ValueError(
                    f"bad sharded backend option {part!r} in {spec!r}; "
                    "expected 'sharded:N[:local|global]'"
                ) from None
    return ShardedBackend(
        shards=2 if shards is None else shards, cross_shard_reads=cross
    )


def _parse_sqlite(rest: str, spec: str) -> SqliteBackend:
    """``sqlite:PATH`` or ``sqlite:PATH?keep=N`` (bounded retention)."""
    path, _, query = rest.partition("?")
    max_runs: Optional[int] = None
    if query:
        key, _, value = query.partition("=")
        if key != "keep" or not value:
            raise ValueError(
                f"bad sqlite backend option {query!r} in {spec!r}; "
                "expected 'sqlite:PATH?keep=N'"
            )
        try:
            max_runs = int(value)
        except ValueError:
            raise ValueError(
                f"bad retention count {value!r} in {spec!r}; "
                "expected 'sqlite:PATH?keep=N'"
            ) from None
    if not path:
        raise ValueError(
            f"sqlite backend needs a file path: 'sqlite:PATH' (got {spec!r})"
        )
    return SqliteBackend(path, max_runs=max_runs)


def store_backend_spec(spec: StoreBackendLike) -> str:
    """The canonical spec string for a backend selection.

    Canonical strings key campaign round ids and JSONL records, so
    equivalent spellings (``"memory"``/``None``, ``"sharded:2:global"`` /
    ``"sharded:2"``) must collapse to one form.
    """
    backend = make_store_backend(spec)
    if isinstance(backend, InMemoryBackend):
        return "inmemory"
    return backend.spec
