"""The persistent store backend: every execution lands in a SQLite file.

Execution itself runs on the in-process :class:`~repro.store.kvstore.DataStore`
(the backend changes what gets *persisted*, never what the analysis sees);
when the run completes, the recorded history is serialized with the
standard trace codec (:mod:`repro.history.trace`) and inserted into the
``executions`` table of the backing file. Recorded traces therefore
survive the process and reopen through
:class:`repro.sources.SqliteTraceSource` — the ``TraceFileSource`` shape,
one document per row instead of one per JSONL line — so campaign runs can
leave a durable, queryable archive of everything they executed.

Each row remembers its *phase*: ``record`` (serial recording), ``explore``
(interleaved execution) or ``replay`` (validation under a dictated turn
order). Reopening defaults to the recorded runs, so analyzing the archive
of an ``analyze --backend sqlite:…`` session sees exactly the histories
the in-memory pipeline analyzed.

Writes use one short-lived connection per execution with a generous
busy-timeout and WAL journaling, so campaign workers and a concurrent
``watch`` reader may safely share a single archive file; persistence
retries transient contention under the ambient
:class:`~repro.faults.RetryPolicy`.
"""
from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from ...faults import RetryPolicy, fault_point
from ...history.model import History
from ...obs import span as obs_span
from ...history.trace import Trace, history_to_json, trace_from_json
from ..backend import BackendRun, PolicyFactory, run_programs
from ..kvstore import DataStore

__all__ = [
    "CompactionStats",
    "SqliteBackend",
    "compact_archive",
    "count_executions",
    "execution_content_hash",
    "iter_executions",
    "latest_execution_id",
    "load_execution",
    "persist_execution",
    "prune_executions",
]

#: Schema version stamped into the archive; readers reject newer files.
SQLITE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS format (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS executions (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    phase TEXT NOT NULL,
    seed INTEGER NOT NULL,
    sessions INTEGER NOT NULL,
    transactions INTEGER NOT NULL,
    doc TEXT NOT NULL
);
"""


def _connect(path: Union[str, Path]) -> sqlite3.Connection:
    conn = sqlite3.connect(str(path), timeout=30.0)
    # WAL lets a tailing reader (isopredict watch) poll while a campaign
    # writer holds its transaction, instead of the two racing to an
    # immediate "database is locked"; busy_timeout backs the same
    # contention window at the statement level. WAL can be refused on
    # exotic filesystems — the archive still works in the default mode.
    try:
        conn.execute("PRAGMA busy_timeout = 30000")
        conn.execute("PRAGMA journal_mode = WAL")
    except sqlite3.OperationalError:
        pass
    conn.executescript(_SCHEMA)
    row = conn.execute(
        "SELECT value FROM format WHERE key = 'schema_version'"
    ).fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO format (key, value) VALUES ('schema_version', ?)",
            (str(SQLITE_SCHEMA_VERSION),),
        )
        conn.commit()
    elif int(row[0]) > SQLITE_SCHEMA_VERSION:
        conn.close()
        raise ValueError(
            f"execution archive {path} has schema version {row[0]}, newer "
            f"than this reader (supports <= {SQLITE_SCHEMA_VERSION})"
        )
    return conn


def persist_execution(
    path: Union[str, Path],
    history: History,
    *,
    phase: str,
    seed: int,
    sessions: int,
    meta: Optional[dict] = None,
) -> int:
    """Append one execution to the archive; returns its row id.

    The write is one transaction and retries transient contention
    (locked/busy archive, injected I/O faults) under the ambient retry
    policy before giving up — a failed attempt leaves no partial row.
    """
    doc = history_to_json(history, meta=meta)
    payload = json.dumps(doc)

    def attempt() -> int:
        fault_point("store.sqlite.persist", path=str(path), phase=phase)
        conn = _connect(path)
        try:
            with conn:  # one transaction per execution
                cursor = conn.execute(
                    "INSERT INTO executions"
                    " (phase, seed, sessions, transactions, doc)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (phase, seed, sessions, len(history), payload),
                )
                return int(cursor.lastrowid)
        finally:
            conn.close()

    policy = RetryPolicy.from_env()
    with obs_span(
        "store.sqlite.persist", phase=phase, transactions=len(history)
    ):
        return policy.call(attempt, key=f"store.sqlite.persist|{path}")


def iter_executions(
    path: Union[str, Path],
    phase: Optional[str] = "record",
    after_id: int = 0,
) -> Iterator[tuple[int, Trace]]:
    """Yield ``(execution_id, trace)`` rows, oldest first.

    ``phase`` filters to one execution kind (default: the recorded runs);
    pass ``None`` for every row in the archive. ``after_id`` skips rows at
    or below the given id — ids are monotone, so a tailing reader resumes
    from the last id it saw and a fresh open-read-close poll sees exactly
    the rows that arrived since.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no execution archive at {path}")
    conn = _connect(path)
    try:
        if phase is None:
            rows = conn.execute(
                "SELECT id, doc FROM executions WHERE id > ? ORDER BY id",
                (after_id,),
            )
        else:
            rows = conn.execute(
                "SELECT id, doc FROM executions"
                " WHERE phase = ? AND id > ? ORDER BY id",
                (phase, after_id),
            )
        for execution_id, doc in rows.fetchall():
            yield int(execution_id), trace_from_json(json.loads(doc))
    finally:
        conn.close()


def latest_execution_id(
    path: Union[str, Path], phase: Optional[str] = None
) -> int:
    """The highest execution id in the archive (0 when empty/missing).

    A tailing reader that wants only *future* rows seeds its cursor here.
    """
    path = Path(path)
    if not path.exists():
        return 0
    conn = _connect(path)
    try:
        if phase is None:
            row = conn.execute("SELECT MAX(id) FROM executions").fetchone()
        else:
            row = conn.execute(
                "SELECT MAX(id) FROM executions WHERE phase = ?", (phase,)
            ).fetchone()
        return int(row[0]) if row and row[0] is not None else 0
    finally:
        conn.close()


def prune_executions(
    path: Union[str, Path],
    max_runs: int,
    phase: Optional[str] = None,
) -> int:
    """Keep only the newest ``max_runs`` rows; returns how many were dropped.

    Retention is by row id (insertion order), oldest first — the archive
    behaves as a bounded ring buffer. With ``phase`` given, only that
    execution kind is counted and pruned; other phases are untouched. Ids
    of surviving rows never change (``AUTOINCREMENT``), so tail cursors
    held by concurrent readers stay valid across a prune.
    """
    if max_runs < 0:
        raise ValueError("max_runs must be >= 0")
    conn = _connect(path)
    try:
        with conn:
            if phase is None:
                cursor = conn.execute(
                    "DELETE FROM executions WHERE id NOT IN"
                    " (SELECT id FROM executions ORDER BY id DESC LIMIT ?)",
                    (max_runs,),
                )
            else:
                cursor = conn.execute(
                    "DELETE FROM executions WHERE phase = ? AND id NOT IN"
                    " (SELECT id FROM executions WHERE phase = ?"
                    "  ORDER BY id DESC LIMIT ?)",
                    (phase, phase, max_runs),
                )
            return int(cursor.rowcount)
    finally:
        conn.close()


def load_execution(path: Union[str, Path], execution_id: int) -> Trace:
    """Load one persisted execution by its row id."""
    conn = _connect(path)
    try:
        row = conn.execute(
            "SELECT doc FROM executions WHERE id = ?", (execution_id,)
        ).fetchone()
    finally:
        conn.close()
    if row is None:
        raise KeyError(f"no execution {execution_id} in {path}")
    return trace_from_json(json.loads(row[0]))


def count_executions(
    path: Union[str, Path], phase: Optional[str] = None
) -> int:
    conn = _connect(path)
    try:
        if phase is None:
            row = conn.execute("SELECT COUNT(*) FROM executions").fetchone()
        else:
            row = conn.execute(
                "SELECT COUNT(*) FROM executions WHERE phase = ?", (phase,)
            ).fetchone()
        return int(row[0])
    finally:
        conn.close()


def execution_content_hash(
    phase: str, seed: int, sessions: int, transactions: int, doc: str
) -> str:
    """Content identity of one archived execution, independent of row id.

    The trace document is parsed and re-serialized canonically (sorted
    keys, minimal separators) so two rows recording the same execution
    hash equal even if their JSON spellings differ — e.g. rows written by
    different Python versions or re-inserted by an earlier merge. A row
    whose ``doc`` is not valid JSON hashes over the raw text instead of
    failing, so compaction never destroys data it cannot parse.
    """
    try:
        payload: object = json.loads(doc)
    except json.JSONDecodeError:
        payload = doc
    key = json.dumps(
        [phase, seed, sessions, transactions, payload],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CompactionStats:
    """What one :func:`compact_archive` pass did."""

    sources: int  #: source archives merged into the destination
    rows_in: int  #: rows examined (destination + all sources)
    rows_out: int  #: distinct rows in the destination afterwards
    duplicates: int  #: rows dropped/skipped as content-identical
    vacuumed: bool  #: whether the file was VACUUMed afterwards
    bytes_before: int  #: destination file size before the pass
    bytes_after: int  #: destination file size after the pass

    def summary(self) -> str:
        saved = self.bytes_before - self.bytes_after
        return (
            f"compacted: {self.rows_in} rows in "
            f"({self.sources} source archive(s)), {self.rows_out} kept, "
            f"{self.duplicates} duplicate(s) dropped"
            + (f", {saved} bytes reclaimed" if saved > 0 else "")
        )


def compact_archive(
    dest: Union[str, Path],
    sources: Iterable[Union[str, Path]] = (),
    *,
    vacuum: bool = True,
) -> CompactionStats:
    """Dedup ``dest`` in place, fold ``sources`` into it, then VACUUM.

    Rows are identical when their :func:`execution_content_hash` matches;
    the earliest row (lowest id, destination before sources, sources in
    the given order) wins, so surviving ids stay monotone and tail
    cursors held by concurrent readers stay valid. Source archives are
    only read, never modified — after a fleet campaign the per-worker
    archives fold into one reopenable archive and can then be deleted by
    the caller. A missing destination is created empty first, so merging
    N worker archives into a fresh file is the one-step
    ``compact_archive("merged.sqlite", worker_archives)``.

    The whole pass is one transaction retried under the ambient
    :class:`~repro.faults.RetryPolicy` (fault point
    ``store.sqlite.compact``); a failed attempt leaves the destination
    unchanged. VACUUM runs afterwards on its own autocommit connection —
    SQLite refuses it inside a transaction.
    """
    dest = Path(dest)
    source_paths = [Path(s) for s in sources]
    for src in source_paths:
        if not src.exists():
            raise FileNotFoundError(f"no execution archive at {src}")
        if dest.exists() and src.resolve() == dest.resolve():
            raise ValueError(
                f"source {src} is the destination archive; in-place dedup "
                "needs no source list"
            )
    bytes_before = dest.stat().st_size if dest.exists() else 0

    def attempt() -> tuple[int, int, int]:
        fault_point(
            "store.sqlite.compact",
            dest=str(dest),
            sources=len(source_paths),
        )
        seen: dict[str, int] = {}
        rows_in = duplicates = 0
        conn = _connect(dest)
        try:
            with conn:
                rows = conn.execute(
                    "SELECT id, phase, seed, sessions, transactions, doc"
                    " FROM executions ORDER BY id"
                ).fetchall()
                for row_id, *content in rows:
                    rows_in += 1
                    digest = execution_content_hash(*content)
                    if digest in seen:
                        conn.execute(
                            "DELETE FROM executions WHERE id = ?", (row_id,)
                        )
                        duplicates += 1
                    else:
                        seen[digest] = int(row_id)
                for src in source_paths:
                    src_conn = _connect(src)
                    try:
                        src_rows = src_conn.execute(
                            "SELECT phase, seed, sessions, transactions, doc"
                            " FROM executions ORDER BY id"
                        ).fetchall()
                    finally:
                        src_conn.close()
                    for content in src_rows:
                        rows_in += 1
                        digest = execution_content_hash(*content)
                        if digest in seen:
                            duplicates += 1
                            continue
                        cursor = conn.execute(
                            "INSERT INTO executions"
                            " (phase, seed, sessions, transactions, doc)"
                            " VALUES (?, ?, ?, ?, ?)",
                            tuple(content),
                        )
                        seen[digest] = int(cursor.lastrowid)
        finally:
            conn.close()
        return rows_in, len(seen), duplicates

    policy = RetryPolicy.from_env()
    with obs_span(
        "store.sqlite.compact", dest=str(dest), sources=len(source_paths)
    ) as span:
        rows_in, rows_out, duplicates = policy.call(
            attempt, key=f"store.sqlite.compact|{dest}"
        )
        if vacuum:
            vacuum_conn = sqlite3.connect(str(dest), timeout=30.0)
            try:
                vacuum_conn.isolation_level = None
                vacuum_conn.execute("VACUUM")
            finally:
                vacuum_conn.close()
        bytes_after = dest.stat().st_size if dest.exists() else 0
        span.set(
            rows_in=rows_in, rows_out=rows_out, duplicates=duplicates
        )
    return CompactionStats(
        sources=len(source_paths),
        rows_in=rows_in,
        rows_out=rows_out,
        duplicates=duplicates,
        vacuumed=vacuum,
        bytes_before=bytes_before,
        bytes_after=bytes_after,
    )


def _phase_of(
    policy_factory: PolicyFactory,
    interleaved: bool,
    turn_order: Optional[Sequence[str]],
) -> str:
    """Classify the execution kind stamped onto the archive row.

    ``record`` is reserved for serial latest-writer runs — the
    serializable observed recordings the analysis consumes. Serial runs
    under any *other* read policy (random weak-isolation exploration,
    custom policies) are ``explore``: reopening an archive defaults to
    the ``record`` rows, and a weakly-isolated history must never pose
    as an observed recording there. The factory is probed once with a
    sentinel session; every in-tree factory is side-effect-free.
    """
    from ..policies import LatestWriterPolicy

    if turn_order is not None:
        return "replay"
    if interleaved:
        return "explore"
    probe = policy_factory("__phase_probe__")
    if isinstance(probe, LatestWriterPolicy):
        return "record"
    return "explore"


class SqliteBackend:
    """In-process execution with a durable SQLite execution archive.

    ``max_runs`` bounds the archive: after each persisted execution the
    oldest rows beyond the limit are pruned (per archive, across phases),
    so a long-lived ingest loop — ``isopredict watch`` feeding a shared
    archive — cannot grow the file without bound. ``None`` (the default)
    keeps everything, preserving the PR 5 archival behavior.
    """

    name = "sqlite"

    def __init__(
        self, path: Union[str, Path], max_runs: Optional[int] = None
    ):
        if max_runs is not None and max_runs < 1:
            raise ValueError("max_runs must be >= 1 (or None to keep all)")
        self.path = Path(path)
        self.max_runs = max_runs

    @property
    def spec(self) -> str:
        """Canonical selection spec (round ids, JSONL records)."""
        if self.max_runs is not None:
            return f"sqlite:{self.path}?keep={self.max_runs}"
        return f"sqlite:{self.path}"

    def prune(self) -> int:
        """Apply the retention bound now; returns rows dropped."""
        if self.max_runs is None:
            return 0
        return prune_executions(self.path, self.max_runs)

    def compact(
        self,
        sources: Iterable[Union[str, Path]] = (),
        *,
        vacuum: bool = True,
    ) -> CompactionStats:
        """Dedup this archive (folding ``sources`` in) — see
        :func:`compact_archive`."""
        return compact_archive(self.path, sources, vacuum=vacuum)

    def new_store(self, initial: Optional[dict] = None) -> DataStore:
        return DataStore(initial=initial)

    def execute(
        self,
        programs: dict[str, Callable],
        policy_factory: PolicyFactory,
        *,
        initial: Optional[dict] = None,
        seed: int = 0,
        interleaved: bool = False,
        turn_order: Optional[Sequence[str]] = None,
    ) -> BackendRun:
        store = self.new_store(initial)
        history = run_programs(
            store,
            programs,
            policy_factory,
            seed=seed,
            interleaved=interleaved,
            turn_order=turn_order,
        )
        phase = _phase_of(policy_factory, interleaved, turn_order)
        meta = {
            "store_backend": "sqlite",
            "path": str(self.path),
            "phase": phase,
        }
        execution_id = persist_execution(
            self.path,
            history,
            phase=phase,
            seed=seed,
            sessions=len(programs),
            meta={"seed": seed, "phase": phase},
        )
        meta["execution_id"] = execution_id
        pruned = self.prune()
        if pruned:
            meta["pruned"] = pruned
        return BackendRun(history=history, store=store, meta=meta)
