"""The sharded store backend: hash-routed keys over N shard recorders.

Real weakly-isolated deployments serve their keyspace from many shards;
this backend reproduces that topology inside the recording layer. A
:class:`ShardedStore` presents the exact :class:`~repro.store.kvstore.DataStore`
surface to clients, read policies and assertion checks, but routes every
per-key question (who wrote this key, what is its latest value) through
the shard the key hashes to. Each shard is an independent
:class:`ShardStore` recorder with its own commit sub-log, so per-shard
histories can be inspected — and analyzed — in isolation via
:meth:`ShardedStore.shard_history`.

**Equivalence by construction.** ``ShardedStore`` subclasses ``DataStore``
and keeps the *global* bookkeeping (commit log, session positions, tid
allocation) on the inherited code path, mirroring every commit into the
touched shards afterwards. The recorded global history is therefore
byte-identical to an :class:`~repro.store.backend.InMemoryBackend` run for
any shard count — sharding changes where data lives, never what the
analysis sees. The routed per-key overrides read their answers from the
shard stores, so the mirror is exercised (not decorative) on every read.

**Cross-shard read policy.** The one semantic knob is what a read-legality
check may look at:

* ``"global"`` (default) — candidate writers are judged against the whole
  multi-shard history, exactly like the in-memory store. Recording,
  exploration and replay all behave identically to ``inmemory``.
* ``"local"`` — legality is judged against the *projection* of the history
  onto the shard of the key being read, modelling a store with per-shard
  consistency and no cross-shard coordination. Random weak exploration
  under ``"local"`` can select read sources that a globally-consistent
  store would forbid, which is precisely the cross-shard anomaly class the
  sharded scenario workloads exist to surface.
"""
from __future__ import annotations

import contextlib
import zlib
from typing import Callable, Optional, Sequence

from ...faults import guarded_fault_point
from ...history.events import Event, ReadEvent
from ...history.model import History, Transaction
from ...obs import span as obs_span

#: single-shard commits are the common case; only the cross-shard mirror
#: fan-out earns a span of its own
_NULL_SPAN = contextlib.nullcontext()
from ..backend import BackendRun, PolicyFactory, run_programs
from ..kvstore import DataStore

__all__ = ["ShardRouter", "ShardStore", "ShardedStore", "ShardedBackend"]

#: Cross-shard read-legality policies.
CROSS_SHARD_POLICIES = ("global", "local")


class ShardRouter:
    """Deterministic key → shard placement.

    Uses CRC-32 rather than Python's string hash so placement is identical
    across processes and interpreter versions (campaign workers must agree
    with the parent on which shard owns a key). A custom routing function
    may be injected for tests (e.g. forcing every key onto one shard).
    """

    def __init__(
        self,
        shards: int,
        route: Optional[Callable[[str], int]] = None,
    ):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards
        self._route = route

    def shard_of(self, key: str) -> int:
        if self._route is not None:
            return self._route(key) % self.shards
        return zlib.crc32(key.encode("utf-8")) % self.shards


class ShardStore(DataStore):
    """One shard's independent recorder.

    A plain :class:`DataStore` fed *projections* of globally committed
    transactions — only the events and writes whose keys live on this
    shard. Its commit sub-log is a valid :class:`History` of its own.
    """

    def install_projection(self, txn: Transaction, writes: dict) -> None:
        """Install a shard-projected committed transaction.

        Bypasses :meth:`DataStore.commit_transaction` on purpose: the
        global store already allocated positions and session indexes, and
        the projection must keep them (a shard history's so-order is the
        global one restricted to this shard's events).
        """
        self._commit_log.append(txn)
        self._writes[txn.tid] = dict(writes)
        for key in writes:
            self._writers_by_key.setdefault(key, []).append(txn.tid)
        for event in txn.events:
            self._initial.setdefault(event.key, None)
        self._history_cache = None


class ShardedStore(DataStore):
    """A multi-shard store presenting the single-store ``DataStore`` surface.

    The inherited state is the *global* view (commit log, session
    positions, tid counter) — the recording layer and history construction
    run on the unmodified ``DataStore`` code path. Every commit is then
    mirrored into the shards it touches, and the per-key query surface
    (``writers_of`` / ``value_written`` / ``wrote`` / ``latest_writer``)
    is overridden to answer from the owning shard store.
    """

    def __init__(
        self,
        initial: Optional[dict[str, object]] = None,
        shards: int = 2,
        router: Optional[ShardRouter] = None,
        cross_shard_reads: str = "global",
    ):
        if cross_shard_reads not in CROSS_SHARD_POLICIES:
            raise ValueError(
                f"unknown cross-shard read policy {cross_shard_reads!r}; "
                f"expected one of {CROSS_SHARD_POLICIES}"
            )
        super().__init__(initial=initial)
        self.router = router or ShardRouter(shards)
        if self.router.shards != shards:
            raise ValueError(
                f"router is built for {self.router.shards} shards, "
                f"backend asked for {shards}"
            )
        self.cross_shard_reads = cross_shard_reads
        self._shards = tuple(
            ShardStore(initial=self._partition(initial, index))
            for index in range(shards)
        )
        #: tid -> sorted tuple of shard indexes the transaction touched.
        self._shards_of_tid: dict[str, tuple[int, ...]] = {}

    def _partition(self, initial: Optional[dict], index: int) -> dict:
        return {
            k: v
            for k, v in (initial or {}).items()
            if self.shard_of(k) == index
        }

    # ------------------------------------------------------------------
    # Topology introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._shards)

    def shard_of(self, key: str) -> int:
        return self.router.shard_of(key)

    def shard_store(self, index: int) -> ShardStore:
        return self._shards[index]

    def shard_history(self, index: int) -> History:
        """The shard's own recorded history (its commit sub-log)."""
        return self._shards[index].history()

    def shards_of(self, tid: str) -> tuple[int, ...]:
        """Shard indexes ``tid`` touched (empty tuple for unknown tids)."""
        return self._shards_of_tid.get(tid, ())

    def cross_shard_tids(self) -> list[str]:
        """Committed transactions touching more than one shard, commit order."""
        return [
            txn.tid
            for txn in self._commit_log
            if len(self._shards_of_tid.get(txn.tid, ())) > 1
        ]

    def meta(self) -> dict:
        """Provenance recorded into the run's history meta.

        Carries the topology and the single- vs cross-shard transaction
        attribution, so predictions over a sharded recording can be traced
        back to the shards their transactions spanned.
        """
        cross = self.cross_shard_tids()
        return {
            "store_backend": "sharded",
            "shards": self.shards,
            "cross_shard_reads": self.cross_shard_reads,
            "cross_shard_txns": len(cross),
            "single_shard_txns": len(self._commit_log) - len(cross),
            "cross_shard_tids": cross,
            # per-transaction placement: the triage map the fuzzer's
            # coverage key and docs/fuzzing.md lean on when attributing
            # a find to cross- vs single-shard contention
            "shards_by_tid": {
                tid: list(shards)
                for tid, shards in sorted(self._shards_of_tid.items())
            },
            "shard_committed": [
                len(s.committed()) for s in self._shards
            ],
            "shard_keys": [
                len(s.initial_values) for s in self._shards
            ],
        }

    # ------------------------------------------------------------------
    # Routed per-key queries (answered by the owning shard)
    # ------------------------------------------------------------------
    def writers_of(self, key: str) -> list[str]:
        return self._shards[self.shard_of(key)].writers_of(key)

    def value_written(self, tid: str, key: str) -> object:
        return self._shards[self.shard_of(key)].value_written(tid, key)

    def wrote(self, tid: str, key: str) -> bool:
        return self._shards[self.shard_of(key)].wrote(tid, key)

    def latest_writer(self, key: str) -> str:
        return self._shards[self.shard_of(key)].latest_writer(key)

    # ------------------------------------------------------------------
    # Commit path: global bookkeeping first, then mirror into shards
    # ------------------------------------------------------------------
    def commit_transaction(
        self,
        tid: str,
        session: str,
        events: list[Event],
        writes: dict[str, object],
    ) -> Transaction:
        txn = super().commit_transaction(tid, session, events, writes)
        by_shard_events: dict[int, list[Event]] = {}
        for event in txn.events:
            by_shard_events.setdefault(
                self.shard_of(event.key), []
            ).append(event)
        by_shard_writes: dict[int, dict[str, object]] = {}
        for key, value in writes.items():
            by_shard_writes.setdefault(self.shard_of(key), {})[key] = value
        touched = sorted(set(by_shard_events) | set(by_shard_writes))
        self._shards_of_tid[tid] = tuple(touched)
        # the commit's failure-prone seam: global bookkeeping is already
        # recorded, so a transient injected fault must be absorbed in
        # place (retried) rather than unwinding a half-mirrored commit
        guarded_fault_point(
            "store.sharded.commit", tid=tid, shards=len(touched)
        )
        with obs_span(
            "store.sharded.commit", shards=len(touched)
        ) if len(touched) > 1 else _NULL_SPAN:
            for index in touched:
                projected = Transaction(
                    tid=txn.tid,
                    session=txn.session,
                    index=txn.index,
                    events=tuple(by_shard_events.get(index, ())),
                    commit_pos=txn.commit_pos,
                )
                self._shards[index].install_projection(
                    projected, by_shard_writes.get(index, {})
                )
        return txn

    # ------------------------------------------------------------------
    # Read legality: global or per-shard trial histories
    # ------------------------------------------------------------------
    def trial_history(self, extra: Transaction) -> History:
        if self.cross_shard_reads == "global":
            return super().trial_history(extra)
        key = _candidate_read_key(extra)
        if key is None:  # not a read trial; fall back to the global view
            return super().trial_history(extra)
        return self._project_trial(extra, self.shard_of(key))

    def _project_trial(self, extra: Transaction, index: int) -> History:
        """The (history + fragment) projection onto one shard.

        The committed prefix needs no recomputation — the shard's own
        sub-log *is* that projection, maintained at commit time — so only
        the in-progress fragment is filtered here. Reads and their
        writers share the read key's shard, so the result is always a
        well-formed history: every kept read's writer kept the
        corresponding write event.
        """
        shard = self._shards[index]
        projected = list(shard.committed())
        events = tuple(
            e for e in extra.events if self.shard_of(e.key) == index
        )
        if events:
            projected.append(
                Transaction(
                    tid=extra.tid,
                    session=extra.session,
                    index=extra.index,
                    events=events,
                    commit_pos=extra.commit_pos,
                )
            )
        return History(projected, initial_values=shard.initial_values)


def _candidate_read_key(extra: Transaction) -> Optional[str]:
    """The key of the read under trial (read policies append it last)."""
    if extra.events and isinstance(extra.events[-1], ReadEvent):
        return extra.events[-1].key
    return None


class ShardedBackend:
    """N hash-routed shards behind the :class:`StoreBackend` protocol.

    ``shards=1`` is the degenerate topology used by the equivalence suite;
    any N with the default ``"global"`` read policy records histories
    identical to the in-memory backend (see the module docstring), while
    ``"local"`` unlocks per-shard read legality for exploration runs.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 2,
        cross_shard_reads: str = "global",
        router: Optional[ShardRouter] = None,
    ):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if cross_shard_reads not in CROSS_SHARD_POLICIES:
            raise ValueError(
                f"unknown cross-shard read policy {cross_shard_reads!r}; "
                f"expected one of {CROSS_SHARD_POLICIES}"
            )
        self.shards = shards
        self.cross_shard_reads = cross_shard_reads
        self.router = router

    @property
    def spec(self) -> str:
        """Canonical selection spec (round ids, JSONL records)."""
        base = f"sharded:{self.shards}"
        if self.cross_shard_reads != "global":
            base += f":{self.cross_shard_reads}"
        return base

    def new_store(self, initial: Optional[dict] = None) -> ShardedStore:
        return ShardedStore(
            initial=initial,
            shards=self.shards,
            router=self.router,
            cross_shard_reads=self.cross_shard_reads,
        )

    def execute(
        self,
        programs: dict[str, Callable],
        policy_factory: PolicyFactory,
        *,
        initial: Optional[dict] = None,
        seed: int = 0,
        interleaved: bool = False,
        turn_order: Optional[Sequence[str]] = None,
    ) -> BackendRun:
        store = self.new_store(initial)
        history = run_programs(
            store,
            programs,
            policy_factory,
            seed=seed,
            interleaved=interleaved,
            turn_order=turn_order,
        )
        return BackendRun(history=history, store=store, meta=store.meta())
