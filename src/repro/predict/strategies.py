"""Prediction strategies (paper Table 2) and solver budgets.

:class:`Budget` is the shared spelling for "how long may the solver
search": a wall-clock bound, a conflict bound, or both. It parses from
the CLI's ``--budget`` flag (``"30s"``, ``"20000c"``, ``"30s,20000c"``, a
bare number meaning seconds) and feeds :class:`repro.predict.IsoPredict`,
which threads it to whichever solver backend the analysis runs on.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["Budget", "EncodingMode", "BoundaryMode", "PredictionStrategy"]


@dataclass(frozen=True)
class Budget:
    """Solver search limits: wall-clock seconds and/or conflict count.

    Both limits apply *per solver call*: an incremental enumeration
    grants every re-check its own allowance, so a budget means the same
    thing on the long-lived in-process backend as on the fresh-start
    external/portfolio backends.
    """

    max_seconds: Optional[float] = None
    max_conflicts: Optional[int] = None

    @classmethod
    def parse(cls, text: "str | float | Budget | None") -> "Budget":
        """``"30s"`` / ``"20000c"`` / ``"30s,20000c"`` / ``30`` (seconds)."""
        if text is None:
            return cls()
        if isinstance(text, Budget):
            return text
        if isinstance(text, (int, float)):
            return cls(max_seconds=float(text))
        seconds: Optional[float] = None
        conflicts: Optional[int] = None
        for part in str(text).split(","):
            part = part.strip().lower()
            if not part:
                continue
            try:
                if part.endswith("s"):
                    seconds = float(part[:-1])
                elif part.endswith("c"):
                    conflicts = int(part[:-1])
                else:
                    seconds = float(part)
            except ValueError:
                raise ValueError(
                    f"bad budget component {part!r}; expected e.g. "
                    "'30s', '20000c', or '30s,20000c'"
                ) from None
        return cls(max_seconds=seconds, max_conflicts=conflicts)

    def __str__(self) -> str:
        parts = []
        if self.max_seconds is not None:
            parts.append(f"{self.max_seconds:g}s")
        if self.max_conflicts is not None:
            parts.append(f"{self.max_conflicts}c")
        return ",".join(parts) if parts else "unbounded"


class EncodingMode(enum.Enum):
    """How unserializability is encoded (§4.2)."""

    EXACT = "exact"  # §4.2.1 — necessary and sufficient (via CEGIS here)
    APPROX = "approx"  # §4.2.2 — sufficient (pco cycle with rank guards)


class BoundaryMode(enum.Enum):
    """How much potentially divergent behaviour is excluded (§4.5)."""

    STRICT = "strict"  # exclude events after any read with a changed writer
    RELAXED = "relaxed"  # exclude events after the *transaction* containing one


@dataclass(frozen=True)
class PredictionStrategy:
    """An (encoding, boundary) combination.

    The paper evaluates three: Exact-Strict, Approx-Strict, Approx-Relaxed.
    Exact-Relaxed is constructible but was not part of the evaluation.
    """

    encoding: EncodingMode
    boundary: BoundaryMode

    def __str__(self) -> str:
        return f"{self.encoding.value}-{self.boundary.value}"

    @classmethod
    def parse(cls, text: str) -> "PredictionStrategy":
        try:
            enc, bnd = text.strip().lower().split("-")
            return cls(EncodingMode(enc), BoundaryMode(bnd))
        except ValueError:
            raise ValueError(
                f"unknown strategy {text!r}; expected e.g. 'approx-strict'"
            ) from None


PredictionStrategy.EXACT_STRICT = PredictionStrategy(
    EncodingMode.EXACT, BoundaryMode.STRICT
)
PredictionStrategy.APPROX_STRICT = PredictionStrategy(
    EncodingMode.APPROX, BoundaryMode.STRICT
)
PredictionStrategy.APPROX_RELAXED = PredictionStrategy(
    EncodingMode.APPROX, BoundaryMode.RELAXED
)
PredictionStrategy.ALL = (
    PredictionStrategy.EXACT_STRICT,
    PredictionStrategy.APPROX_STRICT,
    PredictionStrategy.APPROX_RELAXED,
)
