"""Prediction strategies (paper Table 2)."""
from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EncodingMode", "BoundaryMode", "PredictionStrategy"]


class EncodingMode(enum.Enum):
    """How unserializability is encoded (§4.2)."""

    EXACT = "exact"  # §4.2.1 — necessary and sufficient (via CEGIS here)
    APPROX = "approx"  # §4.2.2 — sufficient (pco cycle with rank guards)


class BoundaryMode(enum.Enum):
    """How much potentially divergent behaviour is excluded (§4.5)."""

    STRICT = "strict"  # exclude events after any read with a changed writer
    RELAXED = "relaxed"  # exclude events after the *transaction* containing one


@dataclass(frozen=True)
class PredictionStrategy:
    """An (encoding, boundary) combination.

    The paper evaluates three: Exact-Strict, Approx-Strict, Approx-Relaxed.
    Exact-Relaxed is constructible but was not part of the evaluation.
    """

    encoding: EncodingMode
    boundary: BoundaryMode

    def __str__(self) -> str:
        return f"{self.encoding.value}-{self.boundary.value}"

    @classmethod
    def parse(cls, text: str) -> "PredictionStrategy":
        try:
            enc, bnd = text.strip().lower().split("-")
            return cls(EncodingMode(enc), BoundaryMode(bnd))
        except ValueError:
            raise ValueError(
                f"unknown strategy {text!r}; expected e.g. 'approx-strict'"
            ) from None


PredictionStrategy.EXACT_STRICT = PredictionStrategy(
    EncodingMode.EXACT, BoundaryMode.STRICT
)
PredictionStrategy.APPROX_STRICT = PredictionStrategy(
    EncodingMode.APPROX, BoundaryMode.STRICT
)
PredictionStrategy.APPROX_RELAXED = PredictionStrategy(
    EncodingMode.APPROX, BoundaryMode.RELAXED
)
PredictionStrategy.ALL = (
    PredictionStrategy.EXACT_STRICT,
    PredictionStrategy.APPROX_STRICT,
    PredictionStrategy.APPROX_RELAXED,
)
