"""The IsoPredict façade: end-to-end predictive analysis (§3, §4).

Orchestrates encoding, solving, decoding, and (for the exact strategy) the
CEGIS refinement loop, and reports the timing/size statistics the paper's
Tables 4 and 5 track (constraint generation time, literal count, solving
time split by outcome).
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..history.model import History
from ..isolation.axioms import pco_cycle
from ..isolation.checkers import is_serializable
from ..isolation.levels import IsolationLevel
from ..smt import Result, Solver
from .decode import decode_boundaries, decode_history
from .encoder import Encoding
from .strategies import BoundaryMode, EncodingMode, PredictionStrategy
from .unserializability import (
    approx_unserializability_constraints,
    assignment_of,
    blocking_clause,
    blocking_clause_for,
)
from .weak_isolation import isolation_constraints

__all__ = [
    "IsoPredict",
    "PredictionBatch",
    "PredictionResult",
    "predict_unserializable",
]


@dataclass
class PredictionResult:
    """Outcome of one predictive-analysis query."""

    status: Result
    isolation: IsolationLevel
    strategy: PredictionStrategy
    predicted: Optional[History] = None
    boundaries: dict = field(default_factory=dict)
    cycle: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return self.status is Result.SAT and self.predicted is not None

    def __bool__(self) -> bool:
        return self.found

    def report(self, observed: Optional[History] = None) -> str:
        """A human-readable account of the prediction.

        With ``observed`` provided, includes the read-level delta (which
        write–read choices changed) — the textual form of the paper's
        blue-edge highlighting.
        """
        lines = [
            f"prediction under {self.isolation} [{self.strategy}]: "
            f"{self.status.value}"
        ]
        stats = self.stats
        lines.append(
            f"  literals={stats.get('literals', 0):,} "
            f"gen={stats.get('gen_seconds', 0.0):.2f}s "
            f"solve={stats.get('solve_seconds', 0.0):.2f}s"
        )
        if not self.found:
            return "\n".join(lines)
        lines.append(
            "  boundaries: "
            + ", ".join(
                f"{s}@{'inf' if p >= 10**9 else p}"
                for s, p in sorted(self.boundaries.items())
            )
        )
        if self.cycle:
            lines.append(f"  pco cycle: {' < '.join(self.cycle)}")
        if observed is not None:
            from ..history.diff import diff_histories

            delta = diff_histories(observed, self.predicted)
            for change in delta.repointed:
                lines.append(f"  changed: {change}")
            for tid, n in sorted(delta.truncated_transactions.items()):
                lines.append(f"  truncated: {tid} (-{n} events)")
            for tid in delta.dropped_transactions:
                lines.append(f"  beyond boundary: {tid}")
        return "\n".join(lines)


@dataclass
class PredictionBatch:
    """Up to *k* distinct predictions enumerated from one observed history.

    Produced by :meth:`IsoPredict.predict_many`, which asserts the encoding
    once and then walks the model space with blocking clauses on a single
    incremental solver — so ``stats`` reflects one constraint generation,
    however many predictions were found. ``status`` is the solver verdict
    that *stopped* the enumeration: ``SAT`` when the requested ``k`` was
    reached, ``UNSAT`` when the candidate space was exhausted first, and
    ``UNKNOWN`` when a budget (time/conflicts/candidates) ran out.
    """

    status: Result
    isolation: IsolationLevel
    strategy: PredictionStrategy
    predictions: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return bool(self.predictions)

    @property
    def best(self) -> Optional[PredictionResult]:
        """The first prediction found (the one ``predict`` would return)."""
        return self.predictions[0] if self.predictions else None

    def __bool__(self) -> bool:
        return self.found

    def __len__(self) -> int:
        return len(self.predictions)

    def __iter__(self):
        return iter(self.predictions)


class IsoPredict:
    """Predicts feasible unserializable executions from an observed one.

    Parameters mirror the paper's configuration space plus the two ablation
    switches (see ``docs/architecture.md``: rank and rw can be disabled to
    demonstrate why they are needed; disabling rank makes the analysis
    unsound on Fig. 6-style histories).
    """

    def __init__(
        self,
        isolation: IsolationLevel,
        strategy: PredictionStrategy = PredictionStrategy.APPROX_STRICT,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        max_candidates: int = 64,
        include_rank: bool = True,
        include_rw: bool = True,
        pco_mode: str = "stratified",
        fixpoint_rounds: int = 2,
    ):
        if isolation is IsolationLevel.SERIALIZABLE:
            raise ValueError("prediction targets weak isolation levels")
        self.isolation = isolation
        self.strategy = strategy
        self.max_conflicts = max_conflicts
        self.max_seconds = max_seconds
        self.max_candidates = max_candidates
        self.include_rank = include_rank
        self.include_rw = include_rw
        self.pco_mode = pco_mode
        self.fixpoint_rounds = fixpoint_rounds

    # ------------------------------------------------------------------
    def predict(self, observed: History) -> PredictionResult:
        """Find one feasible unserializable prediction, or report none."""
        if self.strategy.encoding is EncodingMode.APPROX:
            return self._predict_approx(observed, self.strategy.boundary)
        return self._predict_exact(observed)

    def predict_many(
        self, observed: History, k: Optional[int] = None
    ) -> PredictionBatch:
        """Enumerate up to ``k`` *distinct* unserializable predictions.

        The encoding is generated and asserted once; after each model a
        blocking clause over the choice/boundary variables is added and the
        same incremental solver is re-checked, so successive predictions
        cost one solver call each instead of a full re-encoding. Two
        predictions are distinct exactly when they disagree on some read's
        writer or some session's boundary — the space the blocking clause
        quantifies over.

        ``max_seconds`` is treated as a budget for the whole enumeration
        (``predict`` applies it to each individual check). ``k`` defaults to
        ``max_candidates``. ``k=1`` delegates to :meth:`predict`, so the
        exact strategy keeps its approx-seeded fast path; for ``k>1`` the
        exact strategy runs pure CEGIS (every candidate individually
        serializability-checked), which can be substantially slower.
        """
        k = self.max_candidates if k is None else k
        if k < 1:
            raise ValueError("k must be >= 1")
        if k == 1:
            single = self.predict(observed)
            stats = dict(single.stats)
            stats.setdefault("predictions", int(single.found))
            return PredictionBatch(
                status=single.status,
                isolation=self.isolation,
                strategy=self.strategy,
                predictions=[single] if single.found else [],
                stats=stats,
            )
        deadline = (
            time.monotonic() + self.max_seconds
            if self.max_seconds is not None
            else None
        )
        if self.strategy.encoding is EncodingMode.APPROX:
            batch, _ = self._enumerate(
                observed, k, unser=True, deadline=deadline
            )
            return batch
        # Exact: mirror _predict_exact at batch scale. The approximate
        # encoding's models are all genuine exact predictions and vastly
        # cheaper to enumerate, so drain those first; only if the approx
        # space exhausts below k fall back to CEGIS over the remaining
        # candidate space, with the already-found predictions blocked.
        # Both phases share one deadline so the whole enumeration stays
        # within max_seconds.
        seeded, found = self._enumerate(
            observed, k, unser=True, deadline=deadline
        )
        if len(seeded) >= k or seeded.status is Result.UNKNOWN:
            return seeded
        rest, _ = self._enumerate(
            observed,
            k - len(seeded),
            unser=False,
            exclude=found,
            deadline=deadline,
        )
        stats = dict(rest.stats)
        for key in ("literals", "clauses", "vars", "gen_seconds",
                    "solve_seconds", "candidates"):
            stats[key] = stats.get(key, 0) + seeded.stats.get(key, 0)
        stats["predictions"] = len(seeded.predictions) + len(
            rest.predictions
        )
        return PredictionBatch(
            status=rest.status,
            isolation=self.isolation,
            strategy=self.strategy,
            predictions=seeded.predictions + rest.predictions,
            stats=stats,
        )

    def _enumerate(
        self,
        observed: History,
        k: int,
        unser: bool,
        exclude: tuple = (),
        deadline: Optional[float] = None,
    ) -> tuple[PredictionBatch, list]:
        """Blocking-clause model walk on one incremental solver.

        With ``unser=True`` (the approximate encoding) every model already
        carries a pco cycle, so each one decodes straight to a prediction.
        With ``unser=False`` (exact) the models are feasibility+isolation
        candidates and each fixed candidate is checked for serializability
        exactly — the CEGIS loop — keeping only the unserializable ones.

        ``exclude`` pre-blocks (choice, boundary) assignments found by an
        earlier phase, and ``deadline`` (a ``time.monotonic`` instant) is
        the shared wall-clock budget. Also returns the assignments of the
        predictions it found, so a later phase can exclude them in turn.
        """
        enc, solver, gen_seconds = self._build(
            observed, self.strategy.boundary, unser=unser
        )
        for choices, boundaries in exclude:
            solver.add(blocking_clause_for(enc, choices, boundaries))
        predictions: list[PredictionResult] = []
        assignments: list = []
        status = Result.UNSAT if k > 0 else Result.SAT
        candidates = 0
        while len(predictions) < k:
            budget = None
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    status = Result.UNKNOWN
                    break
            status = solver.check(
                max_conflicts=self.max_conflicts, max_seconds=budget
            )
            if status is not Result.SAT:
                break
            candidates += 1
            model = solver.model()
            predicted = decode_history(enc, model)
            if unser or not is_serializable(predicted):
                predictions.append(
                    PredictionResult(
                        status=Result.SAT,
                        isolation=self.isolation,
                        strategy=self.strategy,
                        predicted=predicted,
                        boundaries=decode_boundaries(enc, model),
                        cycle=pco_cycle(predicted),
                        stats={"candidates": candidates},
                    )
                )
                assignments.append(assignment_of(enc, model))
            elif candidates >= self.max_candidates:
                status = Result.UNKNOWN
                break
            solver.add(blocking_clause(enc, model))
        stats = {
            "literals": solver.num_literals,
            "clauses": solver.num_clauses,
            "vars": solver.num_vars,
            "gen_seconds": gen_seconds,
            "solve_seconds": solver.check_seconds,
            "candidates": candidates,
            "predictions": len(predictions),
        }
        stats.update(solver.stats)
        batch = PredictionBatch(
            status=status,
            isolation=self.isolation,
            strategy=self.strategy,
            predictions=predictions,
            stats=stats,
        )
        return batch, assignments

    # ------------------------------------------------------------------
    def _build(
        self, observed: History, boundary: BoundaryMode, unser: bool
    ) -> tuple[Encoding, Solver, float]:
        start = time.monotonic()
        enc = Encoding(
            observed,
            boundary=boundary,
            include_rank=self.include_rank,
            include_rw=self.include_rw,
            pco_mode=self.pco_mode,
            fixpoint_rounds=self.fixpoint_rounds,
        )
        solver = Solver()
        constraints = []
        constraints += enc.feasibility_constraints()
        if unser:
            constraints += approx_unserializability_constraints(enc)
        constraints += isolation_constraints(enc, self.isolation)
        constraints += enc.definitions()
        for c in constraints:
            solver.add(c)
        gen_seconds = time.monotonic() - start
        return enc, solver, gen_seconds

    def _finish(
        self,
        enc: Encoding,
        solver: Solver,
        status: Result,
        gen_seconds: float,
        candidates: int = 0,
    ) -> PredictionResult:
        stats = {
            "literals": solver.num_literals,
            "clauses": solver.num_clauses,
            "vars": solver.num_vars,
            "gen_seconds": gen_seconds,
            "solve_seconds": solver.check_seconds,
            "candidates": candidates,
        }
        stats.update(solver.stats)
        if status is not Result.SAT:
            return PredictionResult(
                status=status,
                isolation=self.isolation,
                strategy=self.strategy,
                stats=stats,
            )
        model = solver.model()
        predicted = decode_history(enc, model)
        return PredictionResult(
            status=status,
            isolation=self.isolation,
            strategy=self.strategy,
            predicted=predicted,
            boundaries=decode_boundaries(enc, model),
            cycle=pco_cycle(predicted),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _predict_approx(
        self, observed: History, boundary: BoundaryMode
    ) -> PredictionResult:
        enc, solver, gen_seconds = self._build(observed, boundary, unser=True)
        status = solver.check(
            max_conflicts=self.max_conflicts, max_seconds=self.max_seconds
        )
        return self._finish(enc, solver, status, gen_seconds)

    def _predict_exact(self, observed: History) -> PredictionResult:
        """Exact semantics via approx seeding plus CEGIS.

        See ``docs/architecture.md`` ("The exact strategy"): try the cheap
        approximate encoding first — any model it finds is already a valid
        exact prediction — and only fall back to candidate enumeration with
        per-candidate serializability checks when the approximation finds
        nothing.
        """
        seeded = self._predict_approx(observed, self.strategy.boundary)
        if seeded.status is Result.SAT:
            seeded.strategy = self.strategy
            return seeded
        # approx found nothing: enumerate feasibility+isolation candidates
        # and check each fixed candidate's serializability exactly.
        enc, solver, gen_seconds = self._build(
            observed, self.strategy.boundary, unser=False
        )
        gen_seconds += seeded.stats.get("gen_seconds", 0.0)
        candidates = 0
        while candidates < self.max_candidates:
            status = solver.check(
                max_conflicts=self.max_conflicts,
                max_seconds=self.max_seconds,
            )
            if status is not Result.SAT:
                # candidate space exhausted: genuinely no prediction
                return self._finish(
                    enc, solver, status, gen_seconds, candidates
                )
            candidates += 1
            model = solver.model()
            predicted = decode_history(enc, model)
            if not is_serializable(predicted):
                result = self._finish(
                    enc, solver, Result.SAT, gen_seconds, candidates
                )
                return result
            solver.add(blocking_clause(enc, model))
        return PredictionResult(
            status=Result.UNKNOWN,
            isolation=self.isolation,
            strategy=self.strategy,
            stats={
                "literals": solver.num_literals,
                "gen_seconds": gen_seconds,
                "solve_seconds": solver.check_seconds,
                "candidates": candidates,
            },
        )


def predict_unserializable(
    observed: History,
    isolation: IsolationLevel = IsolationLevel.CAUSAL,
    strategy: PredictionStrategy = PredictionStrategy.APPROX_STRICT,
    **kwargs,
) -> PredictionResult:
    """One-shot convenience wrapper around :class:`IsoPredict`."""
    return IsoPredict(isolation, strategy, **kwargs).predict(observed)
