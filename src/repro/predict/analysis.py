"""The IsoPredict façade: end-to-end predictive analysis (§3, §4).

Orchestrates encoding, solving, decoding, and (for the exact strategy) the
CEGIS refinement loop, and reports the timing/size statistics the paper's
Tables 4 and 5 track (constraint generation time, literal count, solving
time split by outcome).
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..history.model import History
from ..isolation.axioms import pco_cycle
from ..obs import span as obs_span
from ..isolation.checkers import is_serializable
from ..isolation.levels import IsolationLevel
from ..smt import BackendSpec, Result, Solver
from .decode import decode_boundaries, decode_history
from .encoder import Encoding
from .strategies import Budget, BoundaryMode, EncodingMode, PredictionStrategy
from .unserializability import (
    approx_unserializability_constraints,
    assignment_of,
    blocking_clause,
    blocking_clause_for,
)
from .weak_isolation import isolation_constraints

__all__ = [
    "IsoPredict",
    "PredictionBatch",
    "PredictionEnumeration",
    "PredictionResult",
    "predict_unserializable",
]


@dataclass
class PredictionResult:
    """Outcome of one predictive-analysis query."""

    status: Result
    isolation: IsolationLevel
    strategy: PredictionStrategy
    predicted: Optional[History] = None
    boundaries: dict = field(default_factory=dict)
    cycle: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return self.status is Result.SAT and self.predicted is not None

    def __bool__(self) -> bool:
        return self.found

    def report(self, observed: Optional[History] = None) -> str:
        """A human-readable account of the prediction.

        With ``observed`` provided, includes the read-level delta (which
        write–read choices changed) — the textual form of the paper's
        blue-edge highlighting.
        """
        lines = [
            f"prediction under {self.isolation} [{self.strategy}]: "
            f"{self.status.value}"
        ]
        stats = self.stats
        lines.append(
            f"  literals={stats.get('literals', 0):,} "
            f"gen={stats.get('gen_seconds', 0.0):.2f}s "
            f"solve={stats.get('solve_seconds', 0.0):.2f}s"
        )
        if not self.found:
            return "\n".join(lines)
        lines.append(
            "  boundaries: "
            + ", ".join(
                f"{s}@{'inf' if p >= 10**9 else p}"
                for s, p in sorted(self.boundaries.items())
            )
        )
        if self.cycle:
            lines.append(f"  pco cycle: {' < '.join(self.cycle)}")
        if observed is not None:
            from ..history.diff import diff_histories

            delta = diff_histories(observed, self.predicted)
            for change in delta.repointed:
                lines.append(f"  changed: {change}")
            for tid, n in sorted(delta.truncated_transactions.items()):
                lines.append(f"  truncated: {tid} (-{n} events)")
            for tid in delta.dropped_transactions:
                lines.append(f"  beyond boundary: {tid}")
        return "\n".join(lines)


@dataclass
class PredictionBatch:
    """Up to *k* distinct predictions enumerated from one observed history.

    Produced by :meth:`IsoPredict.predict_many`, which asserts the encoding
    once and then walks the model space with blocking clauses on a single
    incremental solver — so ``stats`` reflects one constraint generation,
    however many predictions were found. ``status`` is the solver verdict
    that *stopped* the enumeration: ``SAT`` when the requested ``k`` was
    reached, ``UNSAT`` when the candidate space was exhausted first, and
    ``UNKNOWN`` when a budget (time/conflicts/candidates) ran out.
    """

    status: Result
    isolation: IsolationLevel
    strategy: PredictionStrategy
    predictions: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return bool(self.predictions)

    @property
    def best(self) -> Optional[PredictionResult]:
        """The first prediction found (the one ``predict`` would return)."""
        return self.predictions[0] if self.predictions else None

    def __bool__(self) -> bool:
        return self.found

    def __len__(self) -> int:
        return len(self.predictions)

    def __iter__(self):
        return iter(self.predictions)


class IsoPredict:
    """Predicts feasible unserializable executions from an observed one.

    Parameters mirror the paper's configuration space plus the two ablation
    switches (see ``docs/architecture.md``: rank and rw can be disabled to
    demonstrate why they are needed; disabling rank makes the analysis
    unsound on Fig. 6-style histories).
    """

    def __init__(
        self,
        isolation: IsolationLevel,
        strategy: PredictionStrategy = PredictionStrategy.APPROX_STRICT,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        max_candidates: int = 64,
        include_rank: bool = True,
        include_rw: bool = True,
        pco_mode: str = "stratified",
        fixpoint_rounds: int = 2,
        solver: object = "inprocess",
        budget: "Budget | str | None" = None,
    ):
        if isolation is IsolationLevel.SERIALIZABLE:
            raise ValueError("prediction targets weak isolation levels")
        self.isolation = isolation
        self.strategy = strategy
        if budget is not None:
            parsed = Budget.parse(budget)
            if parsed.max_seconds is not None:
                max_seconds = parsed.max_seconds
            if parsed.max_conflicts is not None:
                max_conflicts = parsed.max_conflicts
        self.max_conflicts = max_conflicts
        self.max_seconds = max_seconds
        self.max_candidates = max_candidates
        self.include_rank = include_rank
        self.include_rw = include_rw
        self.pco_mode = pco_mode
        self.fixpoint_rounds = fixpoint_rounds
        # backend selection: a spec string/BackendSpec (validated eagerly
        # so typos fail before any encoding work) or a factory callable
        if isinstance(solver, (str, BackendSpec)):
            solver = BackendSpec.parse(solver)
        self.solver = solver

    @property
    def solver_name(self) -> str:
        """Human/JSON-facing name of the selected backend."""
        if isinstance(self.solver, BackendSpec):
            return str(self.solver)
        return getattr(self.solver, "__name__", "custom")

    # ------------------------------------------------------------------
    def predict(self, observed: History) -> PredictionResult:
        """Find one feasible unserializable prediction, or report none."""
        if self.strategy.encoding is EncodingMode.APPROX:
            return self._predict_approx(observed, self.strategy.boundary)
        return self._predict_exact(observed)

    def predict_many(
        self, observed: History, k: Optional[int] = None
    ) -> PredictionBatch:
        """Enumerate up to ``k`` *distinct* unserializable predictions.

        The encoding is generated and asserted once; after each model a
        blocking clause over the choice/boundary variables is added and the
        same incremental solver is re-checked, so successive predictions
        cost one solver call each instead of a full re-encoding. Two
        predictions are distinct exactly when they disagree on some read's
        writer or some session's boundary — the space the blocking clause
        quantifies over.

        ``max_seconds`` is treated as a budget for the whole enumeration
        (``predict`` applies it to each individual check). ``k`` defaults to
        ``max_candidates``. The exact strategies drain the approximate
        model space first — each of its models is already a genuine exact
        prediction — then fall back to CEGIS with the found assignments
        pre-blocked (see :class:`PredictionEnumeration`).

        For repeated queries over one observed history (k sweeps, a fluent
        :class:`repro.api.Analysis` session) use :meth:`enumerator`, which
        keeps the incremental solver alive between calls.
        """
        k = self.max_candidates if k is None else k
        if k < 1:
            raise ValueError("k must be >= 1")
        enum = self.enumerator(observed)
        enum.ensure(k, deadline=self._deadline())
        return enum.batch(k)

    def enumerator(self, observed: History) -> "PredictionEnumeration":
        """A persistent, incrementally extensible prediction enumeration."""
        return PredictionEnumeration(self, observed)

    def _deadline(self) -> Optional[float]:
        return (
            time.monotonic() + self.max_seconds
            if self.max_seconds is not None
            else None
        )

    # ------------------------------------------------------------------
    def _build(
        self, observed: History, boundary: BoundaryMode, unser: bool
    ) -> tuple[Encoding, Solver, dict]:
        """Build and compile one encoding, timing the two stages apart.

        Returns ``(encoding, solver, timings)`` where ``timings`` carries
        ``encode_seconds`` (expression generation), ``compile_seconds``
        (Tseitin compilation into the SAT core) and their sum
        ``gen_seconds`` (the stat the paper's tables report).
        """
        start = time.monotonic()
        with obs_span("stage.encode", unser=unser) as enc_span:
            enc = Encoding(
                observed,
                boundary=boundary,
                include_rank=self.include_rank,
                include_rw=self.include_rw,
                pco_mode=self.pco_mode,
                fixpoint_rounds=self.fixpoint_rounds,
            )
            solver = Solver(backend=self.solver)
            constraints = []
            constraints += enc.feasibility_constraints()
            if unser:
                constraints += approx_unserializability_constraints(enc)
            constraints += isolation_constraints(enc, self.isolation)
            constraints += enc.definitions()
            enc_span.set(constraints=len(constraints))
        encode_seconds = time.monotonic() - start
        compile_start = time.monotonic()
        with obs_span("stage.compile", unser=unser):
            for c in constraints:
                solver.add(c)
        compile_seconds = time.monotonic() - compile_start
        timings = {
            "encode_seconds": encode_seconds,
            "compile_seconds": compile_seconds,
            "gen_seconds": encode_seconds + compile_seconds,
        }
        return enc, solver, timings

    def _finish(
        self,
        enc: Encoding,
        solver: Solver,
        status: Result,
        timings: dict,
        candidates: int = 0,
    ) -> PredictionResult:
        stats = {
            "literals": solver.num_literals,
            "clauses": solver.num_clauses,
            "vars": solver.num_vars,
            "solve_seconds": solver.check_seconds,
            "candidates": candidates,
            "backend": self.solver_name,
        }
        stats.update(timings)
        stats.update(solver.stats)
        if status is not Result.SAT:
            return PredictionResult(
                status=status,
                isolation=self.isolation,
                strategy=self.strategy,
                stats=stats,
            )
        decode_start = time.monotonic()
        with obs_span("stage.decode"):
            model = solver.model()
            predicted = decode_history(enc, model)
            boundaries = decode_boundaries(enc, model)
        stats["decode_seconds"] = (
            stats.get("decode_seconds", 0.0)
            + time.monotonic()
            - decode_start
        )
        return PredictionResult(
            status=status,
            isolation=self.isolation,
            strategy=self.strategy,
            predicted=predicted,
            boundaries=boundaries,
            cycle=pco_cycle(predicted),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _predict_approx(
        self, observed: History, boundary: BoundaryMode
    ) -> PredictionResult:
        enc, solver, timings = self._build(observed, boundary, unser=True)
        status = solver.check(
            max_conflicts=self.max_conflicts, max_seconds=self.max_seconds
        )
        return self._finish(enc, solver, status, timings)

    def _predict_exact(self, observed: History) -> PredictionResult:
        """Exact semantics via approx seeding plus CEGIS.

        See ``docs/architecture.md`` ("The exact strategy"): try the cheap
        approximate encoding first — any model it finds is already a valid
        exact prediction — and only fall back to candidate enumeration with
        per-candidate serializability checks when the approximation finds
        nothing.
        """
        seeded = self._predict_approx(observed, self.strategy.boundary)
        if seeded.status is Result.SAT:
            seeded.strategy = self.strategy
            return seeded
        # approx found nothing: enumerate feasibility+isolation candidates
        # and check each fixed candidate's serializability exactly.
        enc, solver, timings = self._build(
            observed, self.strategy.boundary, unser=False
        )
        for key in ("encode_seconds", "compile_seconds", "gen_seconds"):
            timings[key] += seeded.stats.get(key, 0.0)
        candidates = 0
        while candidates < self.max_candidates:
            status = solver.check(
                max_conflicts=self.max_conflicts,
                max_seconds=self.max_seconds,
            )
            if status is not Result.SAT:
                # candidate space exhausted: genuinely no prediction
                return self._finish(
                    enc, solver, status, timings, candidates
                )
            candidates += 1
            model = solver.model()
            predicted = decode_history(enc, model)
            if not is_serializable(predicted):
                result = self._finish(
                    enc, solver, Result.SAT, timings, candidates
                )
                return result
            solver.add(blocking_clause(enc, model))
        return PredictionResult(
            status=Result.UNKNOWN,
            isolation=self.isolation,
            strategy=self.strategy,
            stats={
                "literals": solver.num_literals,
                "solve_seconds": solver.check_seconds,
                "candidates": candidates,
                **timings,
            },
        )


class PredictionEnumeration:
    """Persistent blocking-clause model walk over one observed history.

    Produced by :meth:`IsoPredict.enumerator`. The encoding is generated
    and asserted once per phase and kept alive between calls: asking for
    three predictions and later for five re-checks the *same* incremental
    solver twice more instead of re-encoding the history — the mechanism a
    fluent analysis session uses to make strategy/k sweeps cheap.

    Phases mirror the exact strategy's structure. Phase one walks the
    approximate (``unser``) encoding, whose every model decodes straight to
    a prediction; for approximate strategies that is the whole story. For
    exact strategies, once that space drains, phase two opens the
    feasibility+isolation encoding with every found assignment pre-blocked
    and runs CEGIS: each candidate model is individually checked for
    serializability, keeping only unserializable ones.

    A ``deadline`` (``time.monotonic`` instant) bounds one ``ensure`` call;
    hitting it reports :data:`Result.UNKNOWN` but leaves the solver state
    intact, so a later call with a fresh budget resumes where it stopped.
    """

    def __init__(self, analyzer: IsoPredict, observed: History):
        self.analyzer = analyzer
        self.observed = observed
        self.predictions: list[PredictionResult] = []
        self._assignments: list = []
        self._status = Result.UNSAT  # verdict that stopped the last extension
        self._exhausted = False  # the whole candidate space is drained
        self._enc = None
        self._solver = None
        self._phase_unser = True
        self._phase_timings: dict = {}
        self._phase_decode_seconds = 0.0
        self._phase_candidates = 0
        self._closed_stats: dict = {}

    # -- phase management ----------------------------------------------
    def _open_phase(self, unser: bool) -> None:
        enc, solver, timings = self.analyzer._build(
            self.observed, self.analyzer.strategy.boundary, unser=unser
        )
        if not unser:
            for choices, boundaries in self._assignments:
                solver.add(blocking_clause_for(enc, choices, boundaries))
        self._enc, self._solver = enc, solver
        self._phase_unser = unser
        self._phase_timings = timings
        self._phase_decode_seconds = 0.0
        self._phase_candidates = 0

    def _phase_stats(self) -> dict:
        if self._solver is None:
            return {}
        stats = {
            "literals": self._solver.num_literals,
            "clauses": self._solver.num_clauses,
            "vars": self._solver.num_vars,
            "solve_seconds": self._solver.check_seconds,
            "decode_seconds": self._phase_decode_seconds,
            "candidates": self._phase_candidates,
        }
        stats.update(self._phase_timings)
        stats.update(self._solver.stats)
        return stats

    def _close_phase(self) -> None:
        for key, value in self._phase_stats().items():
            if isinstance(value, (int, float)):
                self._closed_stats[key] = (
                    self._closed_stats.get(key, 0) + value
                )
        self._enc = self._solver = None

    def _total_candidates(self) -> int:
        return self._closed_stats.get("candidates", 0) + (
            self._phase_candidates if self._solver is not None else 0
        )

    @property
    def stats(self) -> dict:
        """Cumulative size/timing stats across every phase so far."""
        merged = dict(self._closed_stats)
        for key, value in self._phase_stats().items():
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
        merged["predictions"] = len(self.predictions)
        return merged

    # -- the walk -------------------------------------------------------
    def ensure(self, k: int, deadline: Optional[float] = None) -> None:
        """Extend the enumeration until ``k`` predictions exist (if any do).

        Stops early when the candidate space exhausts (``UNSAT``) or the
        deadline/candidate budget runs out (``UNKNOWN``, resumable).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if getattr(self, "_released", False):
            if len(self.predictions) >= k:
                return  # already have them; nothing to extend
            raise RuntimeError(
                "enumeration was released; its solver is gone — build a "
                "fresh enumerator to search further"
            )
        exact = self.analyzer.strategy.encoding is EncodingMode.EXACT
        rejected = 0  # serializable CEGIS candidates seen by THIS call
        if self._solver is None and not self._exhausted:
            if not self.predictions and not self._closed_stats:
                self._open_phase(unser=True)  # first call ever
        while len(self.predictions) < k and not self._exhausted:
            if self._solver is None:
                # between phases: the unser walk drained, CEGIS pending
                self._open_phase(unser=False)
            budget = None
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    self._status = Result.UNKNOWN
                    return
            status = self._solver.check(
                max_conflicts=self.analyzer.max_conflicts, max_seconds=budget
            )
            if status is Result.UNSAT:
                if self._phase_unser and exact:
                    self._close_phase()
                    continue
                self._status = Result.UNSAT
                self._exhausted = True
                return
            if status is not Result.SAT:
                self._status = status  # a budget ran out; resumable
                return
            self._phase_candidates += 1
            decode_start = time.monotonic()
            with obs_span("stage.decode", candidate=self._phase_candidates):
                model = self._solver.model()
                predicted = decode_history(self._enc, model)
            self._phase_decode_seconds += time.monotonic() - decode_start
            if self._phase_unser or not is_serializable(predicted):
                decode_start = time.monotonic()
                with obs_span("stage.decode", candidate=self._phase_candidates,
                              part="boundaries"):
                    boundaries = decode_boundaries(self._enc, model)
                self._phase_decode_seconds += (
                    time.monotonic() - decode_start
                )
                self.predictions.append(
                    PredictionResult(
                        status=Result.SAT,
                        isolation=self.analyzer.isolation,
                        strategy=self.analyzer.strategy,
                        predicted=predicted,
                        boundaries=boundaries,
                        cycle=pco_cycle(predicted),
                        stats={"candidates": self._total_candidates()},
                    )
                )
                self._assignments.append(assignment_of(self._enc, model))
            else:
                rejected += 1
                if rejected >= self.analyzer.max_candidates:
                    # block the rejected model before stopping: a later
                    # ensure() resumes past it with a fresh candidate budget
                    self._solver.add(blocking_clause(self._enc, model))
                    self._status = Result.UNKNOWN
                    return
            self._solver.add(blocking_clause(self._enc, model))
        if len(self.predictions) >= k:
            self._status = Result.SAT

    def release(self) -> dict:
        """Drop the live solver, folding its stats; returns the totals.

        The predictions found so far stay readable (``predictions``,
        :meth:`batch`), but the enumeration can no longer be extended —
        a later :meth:`ensure` asking for more raises instead of
        silently re-encoding into the wrong phase. This is how bounded
        long-running sessions (the streaming service's window families)
        keep one window's solver alive at a time without leaking every
        previous window's SAT state.
        """
        if self._solver is not None:
            self._close_phase()
        self._released = True
        return self.stats

    @property
    def released(self) -> bool:
        return getattr(self, "_released", False)

    def batch(self, k: Optional[int] = None) -> PredictionBatch:
        """The first ``k`` predictions (all of them when ``k`` is None)."""
        predictions = (
            list(self.predictions) if k is None else self.predictions[:k]
        )
        status = (
            Result.SAT
            if k is not None and len(self.predictions) >= k
            else self._status
        )
        stats = self.stats
        stats["predictions"] = len(predictions)
        stats["backend"] = self.analyzer.solver_name
        return PredictionBatch(
            status=status,
            isolation=self.analyzer.isolation,
            strategy=self.analyzer.strategy,
            predictions=predictions,
            stats=stats,
        )


def predict_unserializable(
    observed: History,
    isolation: IsolationLevel = IsolationLevel.CAUSAL,
    strategy: PredictionStrategy = PredictionStrategy.APPROX_STRICT,
    **kwargs,
) -> PredictionResult:
    """One-shot convenience wrapper around :class:`IsoPredict`."""
    return IsoPredict(isolation, strategy, **kwargs).predict(observed)
