"""Trace encoder: observed history → SMT variable universe and constraints.

Implements Appendix B of the paper. Relations that the paper writes as SMT
functions over transaction pairs become:

* **constants** where the observed trace fixes them (``phi_so``,
  ``phi_obs``) — the constant folding in :mod:`repro.smt.ast` then erases
  them from the emitted formula;
* **plain expressions** where the definition is non-recursive
  (``phi_wr_k``, ``phi_wr``, ``phi_wwcausal``, ``phi_wwrc``) — hash-consing
  shares the subterms across every use;
* **named Boolean variables with Iff definitions** where the definition is
  recursive (``phi_hb``, ``phi_pco``, ``phi_ww``, ``phi_rw``);
* **one-hot enum variables** for ``choice(s, i)`` and ``boundary(s)``;
* **difference-logic integers** for ``rank`` and the commit orders.

The prediction boundary (§4.5) is woven through every relation exactly as in
Appendix B: reads contribute write–read edges only up to their session's
boundary, and arbitration/anti-dependency/causal edges require the writer's
write to sit before its session's boundary.
"""
from __future__ import annotations


from ..history.events import ReadEvent
from ..history.model import History, INIT_TID, Transaction
from ..history.relations import so_pairs
from ..smt import (
    And,
    Bool,
    EnumSort,
    EnumVar,
    Expr,
    FALSE,
    Iff,
    Implies,
    Int,
    IntTerm,
    Not,
    OneSidedGt,
    Or,
    TRUE,
)
from .strategies import BoundaryMode

__all__ = ["Encoding", "INFINITY_POS"]

# stands for the paper's "position infinity" (the end-of-session boundary)
INFINITY_POS = 10**9


class Encoding:
    """The shared constraint universe for one observed history.

    Build one per prediction query; hand it to the unserializability and
    weak-isolation constraint generators, then to the decoder.

    **Determinism invariant**: expression generation never iterates a
    ``set``/``frozenset`` of strings directly — key sets are sorted first.
    String hashing is salted per process (``PYTHONHASHSEED``), so raw set
    order would make CNF variable numbering, and with it the entire
    search trajectory and solver counters, differ from run to run.
    """

    def __init__(
        self,
        observed: History,
        boundary: BoundaryMode = BoundaryMode.STRICT,
        include_rank: bool = True,
        include_rw: bool = True,
        pco_mode: str = "stratified",
        fixpoint_rounds: int = 2,
    ):
        if pco_mode not in ("stratified", "rank"):
            raise ValueError(f"unknown pco_mode {pco_mode!r}")
        self.observed = observed
        self.boundary_mode = boundary
        self.include_rank = include_rank
        self.include_rw = include_rw
        self.pco_mode = pco_mode
        self.fixpoint_rounds = fixpoint_rounds
        self.tids: list[str] = [t.tid for t in observed.all_transactions()]
        self._txn: dict[str, Transaction] = {
            t.tid: t for t in observed.all_transactions()
        }
        self._so = so_pairs(observed)
        self._writer_sort = EnumSort("txn", self.tids)
        self.sessions = sorted(observed.sessions())
        # --- precomputed pair/key structures ----------------------------
        # every constraint family iterates these; build them once instead
        # of regenerating generators and membership scans per family
        self._pairs: list[tuple[str, str]] = [
            (t1, t2) for t1 in self.tids for t2 in self.tids if t1 != t2
        ]
        self._readers_of: dict[str, list[str]] = {}
        self._writers_of_key: dict[str, list[str]] = {}
        for tid in self.tids:
            txn = self._txn[tid]
            # sorted: key-set iteration order must not depend on the
            # per-process string-hash seed (PYTHONHASHSEED), or CNF
            # variable order — and the whole search trajectory — wanders
            # between runs
            for key in sorted(txn.read_keys):
                self._readers_of.setdefault(key, []).append(tid)
            for key in sorted(txn.write_keys):
                self._writers_of_key.setdefault(key, []).append(tid)
        # --- boundary variables: one per session ------------------------
        # Only boundary-candidate values ever enter the positions sort:
        # strict boundaries range over read positions, relaxed ones over
        # commit positions, so the remaining event positions would be dead
        # weight in the sort (pruned before any one-hot clause is emitted).
        boundary_candidates: dict[str, list[int]] = {}
        for session, txns in observed.sessions().items():
            if boundary is BoundaryMode.STRICT:
                candidates = sorted(
                    {r.pos for t in txns for r in t.reads} | {INFINITY_POS}
                )
            else:
                candidates = sorted(
                    {t.commit_pos for t in txns} | {INFINITY_POS}
                )
            boundary_candidates[session] = candidates
        self._positions_sort = EnumSort(
            "pos",
            sorted(
                {p for cs in boundary_candidates.values() for p in cs}
                | {INFINITY_POS}
            ),
        )
        self.boundary: dict[str, EnumVar] = {}
        for session, candidates in boundary_candidates.items():
            self.boundary[session] = EnumVar(
                f"boundary[{session}]", self._positions_sort, candidates
            )
        # --- choice variables: one per read event ----------------------
        # reads[(tid, pos)] = (ReadEvent, EnumVar)
        self.choice: dict[tuple[str, int], EnumVar] = {}
        self._reads: list[tuple[Transaction, ReadEvent]] = []
        for txn in observed.transactions():
            for read in txn.reads:
                # The full writer set stays as the domain on purpose: the
                # hb constraints already exclude session-order-later
                # writers for included reads, and statically pruning them
                # here measurably *hurts* — see docs/performance.md
                # ("choice-domain pruning") for the experiment.
                candidates = [
                    w
                    for w in observed.writers_of(read.key)
                    if w != txn.tid
                ]
                var = EnumVar(
                    f"choice[{txn.session},{read.pos}]",
                    self._writer_sort,
                    candidates=candidates,
                )
                self.choice[(txn.tid, read.pos)] = var
                self._reads.append((txn, read))
        # --- recursive pair variables and their pending definitions -----
        self._defs: list[Expr] = []
        self._hb: dict[tuple[str, str], Expr] = {}
        self._pco: dict[tuple[str, str], Expr] = {}
        self._ww: dict[tuple[str, str], Expr] = {}
        self._rw: dict[tuple[str, str], Expr] = {}
        self._wr_cache: dict[tuple[str, str, str], Expr] = {}
        self._wr_union_cache: dict[tuple[str, str], Expr] = {}
        self._boundary_gt_cache: dict[tuple[str, int], Expr] = {}
        self._boundary_ge_cache: dict[tuple[str, int], Expr] = {}
        self._included_cache: dict[tuple[str, str], Expr] = {}
        self._built_hb = False
        self._built_pco = False

    # ------------------------------------------------------------------
    # Static relation access
    # ------------------------------------------------------------------
    def txn(self, tid: str) -> Transaction:
        return self._txn[tid]

    def so(self, t1: str, t2: str) -> bool:
        return (t1, t2) in self._so

    def session_of(self, tid: str) -> str:
        return self._txn[tid].session

    def pairs(self) -> list[tuple[str, str]]:
        """All ordered pairs of distinct transactions (t0 included)."""
        return self._pairs

    def readers_of(self, key: str) -> list[str]:
        """Transactions reading ``key``, in ``tids`` order."""
        return self._readers_of.get(key, [])

    def writers_of(self, key: str) -> list[str]:
        """Transactions writing ``key``, in ``tids`` order."""
        return self._writers_of_key.get(key, [])

    # ------------------------------------------------------------------
    # Boundary helpers
    # ------------------------------------------------------------------
    def boundary_gt(self, session: str, pos: int) -> Expr:
        """``boundary(session) > pos`` — t0's pseudo-session is unbounded."""
        var = self.boundary.get(session)
        if var is None:  # t0's session: boundary fixed at infinity
            return TRUE
        cached = self._boundary_gt_cache.get((session, pos))
        if cached is None:
            cached = Or(*[var.eq(p) for p in var.candidates if p > pos])
            self._boundary_gt_cache[(session, pos)] = cached
        return cached

    def boundary_ge(self, session: str, pos: int) -> Expr:
        var = self.boundary.get(session)
        if var is None:
            return TRUE
        cached = self._boundary_ge_cache.get((session, pos))
        if cached is None:
            cached = Or(*[var.eq(p) for p in var.candidates if p >= pos])
            self._boundary_ge_cache[(session, pos)] = cached
        return cached

    def write_included(self, tid: str, key: str) -> Expr:
        """``wrpos_k(t) < boundary(session(t))`` — write inside the prefix."""
        if tid == INIT_TID:
            return TRUE
        cached = self._included_cache.get((tid, key))
        if cached is not None:
            return cached
        pos = self._txn[tid].write_pos(key)
        if pos is None:
            expr = FALSE
        else:
            expr = self.boundary_gt(self.session_of(tid), pos)
        self._included_cache[(tid, key)] = expr
        return expr

    # ------------------------------------------------------------------
    # Write–read relation (B.1)
    # ------------------------------------------------------------------
    def wr_k(self, key: str, t1: str, t2: str) -> Expr:
        """``phi_wr_k(t1, t2)``: t2 reads key from t1 within the boundary."""
        cached = self._wr_cache.get((key, t1, t2))
        if cached is not None:
            return cached
        expr = FALSE
        txn2 = self._txn.get(t2)
        if txn2 is not None and t1 != t2 and t2 != INIT_TID:
            session = txn2.session
            disjuncts = []
            for read in txn2.reads:
                if read.key != key:
                    continue
                var = self.choice[(t2, read.pos)]
                disjuncts.append(
                    And(var.eq(t1), self.boundary_ge(session, read.pos))
                )
            expr = Or(*disjuncts)
        self._wr_cache[(key, t1, t2)] = expr
        return expr

    def wr(self, t1: str, t2: str) -> Expr:
        """``phi_wr(t1, t2)``: union of wr_k over all keys."""
        cached = self._wr_union_cache.get((t1, t2))
        if cached is not None:
            return cached
        txn2 = self._txn.get(t2)
        # sorted: frozenset iteration is hash-seed-dependent, and disjunct
        # order shapes the emitted CNF (see the class invariant note)
        keys = sorted(txn2.read_keys) if txn2 is not None else ()
        expr = Or(*[self.wr_k(k, t1, t2) for k in keys])
        self._wr_union_cache[(t1, t2)] = expr
        return expr

    # ------------------------------------------------------------------
    # Feasibility constraints (B.1)
    # ------------------------------------------------------------------
    def feasibility_constraints(self) -> list[Expr]:
        out: list[Expr] = []
        for txn, read in self._reads:
            var = self.choice[(txn.tid, read.pos)]
            session = txn.session
            # (a) reads pinned to the observed writer before the boundary
            pin_guard = self._pin_guard(txn, read)
            out.append(Implies(pin_guard, var.eq(read.writer)))
            # (b) included reads read included writes
            for candidate in var.candidates:
                out.append(
                    Implies(
                        And(
                            var.eq(candidate),
                            self.boundary_ge(session, read.pos),
                        ),
                        self.write_included(candidate, read.key),
                    )
                )
        return out

    def _pin_guard(self, txn: Transaction, read: ReadEvent) -> Expr:
        """When must this read match the observed writer?

        Strict: whenever the read sits strictly before the boundary.
        Relaxed: whenever the read's *transaction commit* sits strictly
        before the boundary (reads inside the boundary transaction float).
        """
        if self.boundary_mode is BoundaryMode.STRICT:
            return self.boundary_gt(txn.session, read.pos)
        return self.boundary_gt(txn.session, txn.commit_pos)

    # ------------------------------------------------------------------
    # Recursive pair relations
    # ------------------------------------------------------------------
    def hb(self, t1: str, t2: str) -> Expr:
        """``phi_hb``: recursive happens-before variable (B.3)."""
        if not self._built_hb:
            self._build_hb()
        return self._hb.get((t1, t2), FALSE)

    def _build_hb(self) -> None:
        """Happens-before as a lower-bounded over-approximation.

        The paper defines ``phi_hb`` with an equality (B.3); only the
        containment direction ``so ∪ wr ∪ (hb ; hb)  ⊆  hb`` is logically
        load-bearing, because hb occurs solely in *restricting* positions
        (antecedents forcing commit-order edges). Encoding just that
        direction keeps hb a sound over-approximation — the solver minimizes
        it to the true closure when that helps satisfiability — and emits
        plain 3-literal transitivity clauses instead of one Tseitin
        auxiliary per chain, which measurably shrinks the search space.
        """
        self._built_hb = True
        for (t1, t2) in self.pairs():
            self._hb[(t1, t2)] = Bool(f"hb[{t1},{t2}]")
        for (t1, t2) in self.pairs():
            var = self._hb[(t1, t2)]
            if self.so(t1, t2):
                self._defs.append(var)
            else:
                self._defs.append(Implies(self.wr(t1, t2), var))
            for t in self.tids:
                if t in (t1, t2):
                    continue
                self._defs.append(
                    Or(
                        Not(self._hb[(t1, t)]),
                        Not(self._hb[(t, t2)]),
                        var,
                    )
                )
            if self.so(t2, t1):
                # hb both ways is impossible under any weak level the
                # analysis targets; pruning the reverse direction early
                # saves the solver from discovering it via co conflicts
                self._defs.append(Not(var))

    def rank(self, t1: str, t2: str) -> IntTerm:
        return Int(f"rank[{t1},{t2}]")

    def _rank_gt(self, a: tuple[str, str], b: tuple[str, str]) -> Expr:
        """``rank(a) > rank(b)`` — or TRUE when rank guards are disabled.

        Ranks are auxiliary existential witnesses of well-foundedness, so
        the atoms are *one-sided* (their negation carries no converse
        ordering; see :func:`repro.smt.ast.OneSidedGt`). Disabling rank is
        the Fig. 6 ablation: it re-admits self-justifying edges and makes
        the analysis unsound.
        """
        if not self.include_rank:
            return TRUE
        return OneSidedGt(self.rank(*a), self.rank(*b))

    def pco(self, t1: str, t2: str) -> Expr:
        if not self._built_pco:
            self._build_pco()
        return self._pco.get((t1, t2), FALSE)

    def ww(self, t1: str, t2: str) -> Expr:
        if not self._built_pco:
            self._build_pco()
        return self._ww.get((t1, t2), FALSE)

    def rw(self, t1: str, t2: str) -> Expr:
        if not self._built_pco:
            self._build_pco()
        return self._rw.get((t1, t2), FALSE)

    def _build_pco(self) -> None:
        if self.pco_mode == "stratified":
            self._build_pco_stratified()
        else:
            self._build_pco_rank()

    def _build_pco_stratified(self) -> None:
        """Least-fixpoint pco by stratified rounds and path doubling.

        The paper's rank guards delegate well-foundedness to the SMT solver's
        integer reasoning, which a CDCL core without theory propagation
        explores very slowly (every rank atom is a blind decision). This
        encoding computes the same least fixpoint *structurally*:

        * round 0: ``P = closure(so ∪ wr)`` by ``ceil(log2(n-1))`` layers of
          path doubling — each layer is an Iff over the previous one, so
          unit propagation evaluates the closure deterministically from the
          choice variables, with no decisions;
        * round r: derive ``ww_r``/``rw_r`` against the round r-1 closure
          (their §4.2.2 definitions, boundary guards included), then close
          again over the enriched edge set.

        Stratification makes self-justifying edges (Fig. 6) structurally
        impossible: definitions only ever reference earlier strata. With
        ``fixpoint_rounds`` rounds the encoding realizes the LFP restricted
        to that many ww/rw feedback iterations — exact on every history we
        cross-check against the graph fixpoint (see tests), and sound
        always. The rank-guarded variant remains available as
        ``pco_mode='rank'`` for the ablation benchmarks.
        """
        self._built_pco = True
        layers = self._doubling_depth()
        # round 0: closure of so ∪ wr
        base = {
            (t1, t2): Or(
                TRUE if self.so(t1, t2) else FALSE, self.wr(t1, t2)
            )
            for (t1, t2) in self.pairs()
        }
        closure = self._close(base, layers, tag="p0")
        last_ww: dict[tuple[str, str], Expr] = {}
        last_rw: dict[tuple[str, str], Expr] = {}
        for round_no in range(1, self.fixpoint_rounds + 1):
            ww_r: dict[tuple[str, str], Expr] = {}
            rw_r: dict[tuple[str, str], Expr] = {}
            for (t1, t2) in self.pairs():
                ww_var = Bool(f"ww{round_no}[{t1},{t2}]")
                self._defs.append(
                    Iff(ww_var, self._ww_from(t1, t2, closure))
                )
                ww_r[(t1, t2)] = ww_var
                rw_var = Bool(f"rw{round_no}[{t1},{t2}]")
                self._defs.append(
                    Iff(rw_var, self._rw_from(t1, t2, closure))
                )
                rw_r[(t1, t2)] = rw_var
            enriched = {
                (t1, t2): Or(
                    closure[(t1, t2)],
                    ww_r[(t1, t2)],
                    rw_r[(t1, t2)],
                )
                for (t1, t2) in self.pairs()
            }
            closure = self._close(enriched, layers, tag=f"q{round_no}")
            last_ww, last_rw = ww_r, rw_r
        self._pco = closure
        self._ww = last_ww
        self._rw = last_rw

    def _doubling_depth(self) -> int:
        n = max(2, len(self.tids) - 1)
        depth = 1
        while (1 << depth) < n:
            depth += 1
        return depth

    def _close(
        self,
        base: dict[tuple[str, str], Expr],
        layers: int,
        tag: str,
    ) -> dict[tuple[str, str], Expr]:
        """Transitive closure of ``base`` by repeated squaring."""
        current = base
        for d in range(1, layers + 1):
            nxt: dict[tuple[str, str], Expr] = {}
            for (t1, t2) in self.pairs():
                var = Bool(f"{tag}.c{d}[{t1},{t2}]")
                chains = [
                    And(current[(t1, t)], current[(t, t2)])
                    for t in self.tids
                    if t not in (t1, t2)
                ]
                self._defs.append(
                    Iff(var, Or(current[(t1, t2)], *chains))
                )
                nxt[(t1, t2)] = var
            current = nxt
        return current

    def _ww_from(
        self, t1: str, t2: str, reach: dict[tuple[str, str], Expr]
    ) -> Expr:
        """Arbitration (B.2.2) justified against a given reachability."""
        shared = self._written_keys(t1) & self._written_keys(t2)
        disjuncts = []
        for key in sorted(shared):
            for t3 in self.readers_of(key):
                if t3 in (t1, t2):
                    continue
                disjuncts.append(
                    And(
                        self.wr_k(key, t2, t3),
                        reach[(t1, t3)],
                        self.write_included(t1, key),
                    )
                )
        return Or(*disjuncts)

    def _rw_from(
        self, t1: str, t2: str, reach: dict[tuple[str, str], Expr]
    ) -> Expr:
        """Anti-dependency (B.2.2) justified against a given reachability."""
        if not self.include_rw:
            return FALSE
        keys = self._txn[t1].read_keys & self._written_keys(t2)
        disjuncts = []
        for key in sorted(keys):
            for t3 in self.writers_of(key):
                if t3 in (t1, t2):
                    continue
                disjuncts.append(
                    And(
                        self.wr_k(key, t3, t1),
                        reach[(t3, t2)],
                        self.write_included(t2, key),
                    )
                )
        return Or(*disjuncts)

    def _build_pco_rank(self) -> None:
        """Create pco/ww/rw variables and their rank-guarded definitions (B.2.2).

        The paper states the definitions as equalities; only the
        *justification* direction (``var ⇒ definition``) is load-bearing,
        because pco/ww/rw occur positively in the cyclicity goal: a model
        may under-populate them, never over-populate. Encoding just that
        direction (plus cheap base-case clauses that help propagation)
        keeps soundness — every true edge still needs a rank-decreasing
        derivation — while emitting far fewer auxiliary variables.
        """
        self._built_pco = True
        for (t1, t2) in self.pairs():
            self._pco[(t1, t2)] = Bool(f"pco[{t1},{t2}]")
            self._ww[(t1, t2)] = Bool(f"ww[{t1},{t2}]")
            self._rw[(t1, t2)] = Bool(f"rw[{t1},{t2}]")
        for (t1, t2) in self.pairs():
            self._defs.append(
                Implies(self._ww[(t1, t2)], self._ww_definition(t1, t2))
            )
            self._defs.append(
                Implies(self._rw[(t1, t2)], self._rw_definition(t1, t2))
            )
            base = [
                TRUE if self.so(t1, t2) else FALSE,
                self.wr(t1, t2),
                self._ww[(t1, t2)],
                self._rw[(t1, t2)],
            ]
            chains = [
                And(
                    self._pco[(t1, t)],
                    self._pco[(t, t2)],
                    self._rank_gt((t1, t2), (t1, t)),
                    self._rank_gt((t1, t2), (t, t2)),
                )
                for t in self.tids
                if t not in (t1, t2)
            ]
            self._defs.append(
                Implies(self._pco[(t1, t2)], Or(*base, *chains))
            )
            # base-case propagation helpers (the dropped ⇐ direction's
            # cheap fragment): base edges are pco edges
            if self.so(t1, t2):
                self._defs.append(self._pco[(t1, t2)])

    def _written_keys(self, tid: str) -> frozenset[str]:
        return self._txn[tid].write_keys

    def _ww_definition(self, t1: str, t2: str) -> Expr:
        """Arbitration (B.2.2): wr_k(t2,t3) ∧ pco(t1,t3), rank-guarded."""
        shared = self._written_keys(t1) & self._written_keys(t2)
        disjuncts = []
        for key in sorted(shared):
            for t3 in self.readers_of(key):
                if t3 in (t1, t2):
                    continue
                disjuncts.append(
                    And(
                        self.wr_k(key, t2, t3),
                        self._pco[(t1, t3)],
                        self._rank_gt((t1, t2), (t1, t3)),
                        self.write_included(t1, key),
                    )
                )
        return Or(*disjuncts)

    def _rw_definition(self, t1: str, t2: str) -> Expr:
        """Anti-dependency (B.2.2): wr_k(t3,t1) ∧ pco(t3,t2), rank-guarded."""
        if not self.include_rw:
            return FALSE
        txn1 = self._txn[t1]
        keys = txn1.read_keys & self._written_keys(t2)
        disjuncts = []
        for key in sorted(keys):
            for t3 in self.writers_of(key):
                if t3 in (t1, t2):
                    continue
                disjuncts.append(
                    And(
                        self.wr_k(key, t3, t1),
                        self._pco[(t3, t2)],
                        self._rank_gt((t1, t2), (t3, t2)),
                        self.write_included(t2, key),
                    )
                )
        return Or(*disjuncts)

    # ------------------------------------------------------------------
    def definitions(self) -> list[Expr]:
        """All Iff definitions accumulated so far (call after building)."""
        return list(self._defs)
