"""Decode a satisfying model into a predicted execution history."""
from __future__ import annotations


from ..history.events import Event, ReadEvent
from ..history.model import History, INIT_TID, Transaction
from ..smt import Model
from .encoder import Encoding, INFINITY_POS

__all__ = ["decode_history", "decode_boundaries"]


def decode_boundaries(enc: Encoding, model: Model) -> dict[str, int]:
    """Per-session boundary positions chosen by the solver."""
    return {
        session: int(model.enum_value(var))
        for session, var in enc.boundary.items()
    }


def _written_value(observed: History, writer: str, key: str) -> object:
    """The value ``writer`` put into ``key`` in the observed execution.

    Informational only — the axiomatic history is ⟨T, so, wr⟩; values for
    repointed reads come from the writer's observed write and may differ in
    a diverging validating execution.
    """
    if writer == INIT_TID:
        return observed.initial_values.get(key)
    txn = observed.transaction(writer)
    for w in txn.writes:
        if w.key == key:
            return w.value
    return None


def decode_history(enc: Encoding, model: Model) -> History:
    """The predicted execution prefix: events up to each session boundary.

    An event is included iff its position is at most its session's boundary
    (write and commit positions never coincide with a boundary position, so
    ``<=`` implements "reads at the boundary stay, everything after goes").
    Transactions with no included events are dropped; because boundaries cut
    position order, dropped transactions always form a per-session suffix.
    """
    boundaries = decode_boundaries(enc, model)
    observed = enc.observed
    txns: list[Transaction] = []
    for txn in observed.transactions():
        bound = boundaries.get(txn.session, INFINITY_POS)
        events: list[Event] = []
        for event in txn.events:
            if event.pos > bound:
                continue
            if isinstance(event, ReadEvent):
                writer = str(model.enum_value(enc.choice[(txn.tid, event.pos)]))
                events.append(
                    ReadEvent(
                        pos=event.pos,
                        key=event.key,
                        writer=writer,
                        value=_written_value(observed, writer, event.key),
                    )
                )
            else:
                events.append(event)
        if not events:
            continue
        txns.append(
            Transaction(
                tid=txn.tid,
                session=txn.session,
                index=txn.index,
                events=tuple(events),
                commit_pos=txn.commit_pos,
            )
        )
    return History(txns, initial_values=observed.initial_values)
