"""Unserializability constraints (paper §4.2, Appendix B.2).

Two encodings:

* **Approximate** (§4.2.2) — require the rank-guarded partial commit order
  pco to be cyclic. Sufficient but in principle incomplete; sound because
  rank forces every pco edge to have a well-founded derivation, so any model
  cycle exists in the true least fixpoint.
* **Exact** (§4.2.1) — the paper uses a universally quantified constraint
  ("no commit order serializes the prediction"). Our quantifier-free
  substrate realizes the same semantics by CEGIS (see
  ``docs/architecture.md``): enumerate
  candidate predictions satisfying feasibility + isolation, check each fixed
  candidate's serializability with the existential encoding of
  :mod:`repro.isolation.checkers`, and block serializable candidates.
"""
from __future__ import annotations

import itertools

from ..smt import And, Expr, Not, Or
from .encoder import Encoding

__all__ = [
    "approx_unserializability_constraints",
    "assignment_of",
    "blocking_clause",
    "blocking_clause_for",
    "exact_expansion_constraints",
]


def approx_unserializability_constraints(enc: Encoding) -> list[Expr]:
    """B.2.2: some pair is pco-ordered both ways (pco is cyclic)."""
    cycle = Or(
        *[
            And(enc.pco(t1, t2), enc.pco(t2, t1))
            for (t1, t2) in enc.pairs()
            if t1 < t2  # one disjunct per unordered pair suffices
        ]
    )
    return [cycle]


def exact_expansion_constraints(enc: Encoding, max_txns: int = 7) -> list[Expr]:
    """B.2.1's quantified constraint, expanded over all commit orders.

    The paper asserts ``forall co. not IsSerializable(co)``. Over a finite
    transaction set the quantifier is a finite conjunction: for every
    permutation π (t0 first — it is so-before everything), the predicted
    execution must *not* be serialized by π, i.e. some pair ordered by
    so/wr/arbitration-under-π runs against π. With π fixed, all co
    comparisons are constants, so each conjunct is a plain Boolean formula
    over the choice variables.

    Factorial blow-up restricts this to small histories (``max_txns``); it
    exists as the semantics-faithful oracle against which the CEGIS
    realization of the exact strategy is tested.
    """
    tids = enc.tids
    if len(tids) - 1 > max_txns:
        raise ValueError(
            f"exact expansion over {len(tids) - 1} transactions exceeds "
            f"max_txns={max_txns} ({len(tids) - 1}! permutations)"
        )
    constraints: list[Expr] = []
    rest = tids[1:]
    for perm in itertools.permutations(rest):
        order = [tids[0], *perm]
        position = {tid: i for i, tid in enumerate(order)}
        violations: list[Expr] = []
        for (t1, t2) in enc.pairs():
            if position[t1] < position[t2]:
                continue  # π respects this pair; cannot be the violation
            ordered_by = [
                TRUE_IF(enc.so(t1, t2)),
                enc.wr(t1, t2),
                _arbitration_under(enc, t1, t2, position),
            ]
            violations.append(Or(*ordered_by))
        constraints.append(Or(*violations))
    return constraints


def TRUE_IF(flag: bool) -> Expr:
    from ..smt import FALSE, TRUE

    return TRUE if flag else FALSE


def _arbitration_under(
    enc: Encoding, t1: str, t2: str, position: dict[str, int]
) -> Expr:
    """Equation 1's arbitration with a fixed commit order (B.2.1)."""
    shared = enc.txn(t1).write_keys & enc.txn(t2).write_keys
    disjuncts = []
    for key in sorted(shared):
        for t3 in enc.tids:
            if t3 in (t1, t2):
                continue
            if key not in enc.txn(t3).read_keys:
                continue
            if position[t1] >= position[t3]:
                continue  # co(t1) < co(t3) is false under π
            disjuncts.append(
                And(
                    enc.wr_k(key, t2, t3),
                    enc.write_included(t1, key),
                )
            )
    return Or(*disjuncts)


def blocking_clause(enc: Encoding, model) -> Expr:
    """Negate the model's choice/boundary assignment (CEGIS refinement).

    Any future model must differ in at least one read's writer or one
    session's boundary, which is exactly the candidate space the exact
    strategy enumerates.
    """
    choices, boundaries = assignment_of(enc, model)
    return blocking_clause_for(enc, choices, boundaries)


def assignment_of(enc: Encoding, model) -> tuple[dict, dict]:
    """The model's (choice, boundary) enum assignment, by encoding key.

    Keyed by the encoding's stable identifiers — ``(tid, read position)``
    for choices, session name for boundaries — so an assignment extracted
    under one :class:`Encoding` can be blocked in another encoding of the
    same observed history (used when the k-prediction enumeration switches
    from the approximate to the exact phase).
    """
    choices = {
        key: model.enum_value(var) for key, var in enc.choice.items()
    }
    boundaries = {
        session: model.enum_value(var)
        for session, var in enc.boundary.items()
    }
    return choices, boundaries


def blocking_clause_for(
    enc: Encoding, choices: dict, boundaries: dict
) -> Expr:
    """A blocking clause from a key→value assignment (see ``assignment_of``)."""
    fixed = [
        enc.choice[key].eq(value) for key, value in choices.items()
    ] + [
        enc.boundary[session].eq(value)
        for session, value in boundaries.items()
    ]
    return Or(*[Not(f) for f in fixed])
