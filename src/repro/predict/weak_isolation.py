"""Weak-isolation constraints (paper §4.3, Appendix B.3).

Both levels assert the existence of a strict total commit order consistent
with happens-before and the level's arbitration order, as difference-logic
constraints over per-transaction integers.
"""
from __future__ import annotations

from ..history.model import INIT_TID
from ..isolation.levels import IsolationLevel
from ..smt import And, Expr, Implies, Int, OneSidedLt, Or, TRUE
from .encoder import Encoding

__all__ = [
    "isolation_constraints",
    "causal_constraints",
    "read_atomic_constraints",
    "rc_constraints",
]


def causal_constraints(enc: Encoding) -> list[Expr]:
    """Causal consistency (B.3.1): (hb ∪ wwcausal)+ embeds in a total order."""
    out: list[Expr] = []
    co = {tid: Int(f"cocausal[{tid}]") for tid in enc.tids}
    for (t1, t2) in enc.pairs():
        ww = _ww_causal(enc, t1, t2)
        # the commit order is an existential witness appearing only in
        # implication heads, so one-sided atoms suffice (acyclic forced
        # pairs always extend to a strict total order)
        out.append(
            Implies(Or(enc.hb(t1, t2), ww), OneSidedLt(co[t1], co[t2]))
        )
    return out


def _ww_causal(enc: Encoding, t1: str, t2: str) -> Expr:
    """wwcausal(t1,t2): both write k; some t3 reads k from t2, hb(t1,t3)."""
    shared = (
        enc.txn(t1).write_keys & enc.txn(t2).write_keys
    )
    disjuncts = []
    for key in sorted(shared):
        for t3 in enc.readers_of(key):
            if t3 in (t1, t2):
                continue
            disjuncts.append(
                And(
                    enc.wr_k(key, t2, t3),
                    enc.hb(t1, t3),
                    enc.write_included(t1, key),
                )
            )
    return Or(*disjuncts)


def read_atomic_constraints(enc: Encoding) -> list[Expr]:
    """Read atomic (§8 extension): like causal with direct so/wr support.

    ``ww_ra(t1, t2)`` holds when some transaction reads k from t2 while
    being *directly* so-or-wr-after t1 (no closure), and t1 also writes k.
    """
    out: list[Expr] = []
    co = {tid: Int(f"cora[{tid}]") for tid in enc.tids}
    for (t1, t2) in enc.pairs():
        shared = enc.txn(t1).write_keys & enc.txn(t2).write_keys
        disjuncts = []
        for key in sorted(shared):
            for t3 in enc.readers_of(key):
                if t3 in (t1, t2):
                    continue
                support = TRUE if enc.so(t1, t3) else enc.wr(t1, t3)
                disjuncts.append(
                    And(
                        enc.wr_k(key, t2, t3),
                        support,
                        enc.write_included(t1, key),
                    )
                )
        ww = Or(*disjuncts)
        out.append(
            Implies(Or(enc.hb(t1, t2), ww), OneSidedLt(co[t1], co[t2]))
        )
    return out


def rc_constraints(enc: Encoding) -> list[Expr]:
    """Read committed (B.3.2): (hb ∪ wwrc)+ embeds in a total order."""
    out: list[Expr] = []
    co = {tid: Int(f"corc[{tid}]") for tid in enc.tids}
    for (t1, t2) in enc.pairs():
        ww = _ww_rc(enc, t1, t2)
        out.append(
            Implies(Or(enc.hb(t1, t2), ww), OneSidedLt(co[t1], co[t2]))
        )
    return out


def _ww_rc(enc: Encoding, t1: str, t2: str) -> Expr:
    """wwrc(t1,t2): a transaction reads from t1 then later reads k from t2.

    B.3.2: for every t3 reading key k (written by both t1 and t2) at
    position j, and reading anything at an earlier position i, if
    choice(s3,i)=t1 and choice(s3,j)=t2 with j inside the boundary, then t2
    must commit-order after t1.
    """
    shared = enc.txn(t1).write_keys & enc.txn(t2).write_keys
    if not shared:
        return Or()
    disjuncts = []
    for t3 in enc.tids:
        if t3 in (t1, t2) or t3 == INIT_TID:
            continue
        txn3 = enc.txn(t3)
        session = txn3.session
        for key in sorted(shared & txn3.read_keys):
            for j in txn3.read_positions(key):
                later = enc.choice[(t3, j)]
                if t2 not in later.candidates:
                    continue
                for i in txn3.read_positions():
                    if i >= j:
                        continue
                    earlier = enc.choice[(t3, i)]
                    if t1 not in earlier.candidates:
                        continue
                    disjuncts.append(
                        And(
                            earlier.eq(t1),
                            later.eq(t2),
                            enc.boundary_ge(session, j),
                        )
                    )
    return Or(*disjuncts)


def isolation_constraints(
    enc: Encoding, level: IsolationLevel
) -> list[Expr]:
    """Constraints making the predicted execution valid under ``level``."""
    if level is IsolationLevel.CAUSAL:
        return causal_constraints(enc)
    if level is IsolationLevel.READ_ATOMIC:
        return read_atomic_constraints(enc)
    if level is IsolationLevel.READ_COMMITTED:
        return rc_constraints(enc)
    raise ValueError(
        f"prediction targets weak levels (causal/ra/rc), not {level}"
    )
