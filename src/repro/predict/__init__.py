"""IsoPredict's predictive analysis — the paper's primary contribution (§4).

Given an observed execution history, generate SMT constraints whose models
are *feasible, unserializable* executions of the same program under a weak
isolation level, and decode a satisfying model back into a predicted
history. See ``docs/architecture.md`` for how the exact strategy's
quantified encoding is realized via CEGIS on our quantifier-free substrate.
"""
from .strategies import Budget, BoundaryMode, EncodingMode, PredictionStrategy
from .encoder import Encoding
from .analysis import (
    IsoPredict,
    PredictionBatch,
    PredictionEnumeration,
    PredictionResult,
    predict_unserializable,
)

__all__ = [
    "BoundaryMode",
    "Budget",
    "Encoding",
    "EncodingMode",
    "IsoPredict",
    "PredictionBatch",
    "PredictionEnumeration",
    "PredictionResult",
    "PredictionStrategy",
    "predict_unserializable",
]
