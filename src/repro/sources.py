"""History sources: where an observed execution comes from.

The analysis is defined over *histories* (paper §3), not over this
repository's benchmark classes — a recorded trace from a production
backend is just as analyzable as an in-process benchmark run. A
:class:`HistorySource` produces a :class:`RecordedRun`: the observed
history, provenance metadata, and — when the source can deterministically
re-execute its application — a :class:`ReplayHandle` for validation.

Four sources ship with the repository:

* :class:`BenchAppSource` — records one of the ported benchmark apps
  (or any :class:`~repro.bench_apps.base.AppSpec`) in process;
* :class:`ProgramsSource` — records raw session programs, no app class
  needed (the quickstart example's shape);
* :class:`TraceFileSource` — loads traces recorded *outside* this process
  from JSON/JSONL files; replay is naturally unavailable, and the API says
  so (``RecordedRun.replay is None``) instead of crashing;
* :class:`SqliteTraceSource` — reopens the executions a ``sqlite:PATH``
  store backend persisted (same shape as trace files: analysis yes,
  replay no);
* :class:`FuzzSource` — adapts :class:`repro.fuzz.RandomApp`, and its
  :meth:`~FuzzSource.runs` opens a continuous stream of fresh scenarios.

``as_source`` coerces the convenient spellings (an ``AppSpec`` subclass, a
trace path, a bare :class:`~repro.history.model.History`) into a source, so
the fluent :class:`repro.api.Analysis` entry point accepts all of them.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Iterator,
    Optional,
    Protocol,
    Type,
    Union,
    runtime_checkable,
)

from .bench_apps.base import (
    AppSpec,
    RunOutcome,
    WorkloadConfig,
    record_observed,
)
from .history.model import History
from .history.trace import Trace, iter_traces
from .isolation.levels import IsolationLevel
from .store.backend import StoreBackend
from .validate.validator import ValidationReport, validate_prediction

__all__ = [
    "RecordedRun",
    "ReplayHandle",
    "HistorySource",
    "BenchAppSource",
    "ProgramsSource",
    "TraceFileSource",
    "SqliteTraceSource",
    "FuzzSource",
    "HistoryValueSource",
    "as_source",
    "iter_runs",
]


@dataclass
class ReplayHandle:
    """Everything validation needs to deterministically re-execute a run.

    ``make_programs`` returns a *fresh* program set (and its initial state)
    on every call — session programs carry per-run state, so replay must
    never reuse the instance that produced the recording (§7.1).
    """

    make_programs: Callable[[], tuple[dict, dict]]
    seed: int = 0
    backend: Optional[StoreBackend] = None

    def validate(
        self,
        predicted: History,
        isolation: IsolationLevel,
        observed: Optional[History] = None,
    ) -> ValidationReport:
        """Directed-replay validation of ``predicted`` (paper §5)."""
        programs, initial = self.make_programs()
        return validate_prediction(
            predicted,
            programs,
            isolation,
            observed=observed,
            seed=self.seed,
            initial=initial,
            backend=self.backend,
        )


@dataclass
class RecordedRun:
    """One observed execution, ready for analysis.

    ``meta`` is provenance (source kind, app, seed, workload, …) — it
    travels into saved traces and campaign records but never affects the
    analysis. ``replay`` is ``None`` exactly when the source cannot
    re-execute the application (externally recorded traces); ``outcome``
    keeps the in-process run details (store handle, assertion failures)
    when there was one.
    """

    history: History
    meta: dict = field(default_factory=dict)
    replay: Optional[ReplayHandle] = None
    outcome: Optional[RunOutcome] = None

    @property
    def can_validate(self) -> bool:
        return self.replay is not None


@runtime_checkable
class HistorySource(Protocol):
    """Anything that can produce an observed execution history.

    ``record()`` produces one :class:`RecordedRun`. Sources that naturally
    generate *many* runs (fuzzers, multi-document trace files) additionally
    offer ``runs()``; use :func:`iter_runs` to consume any source
    uniformly.
    """

    name: str

    def record(self) -> RecordedRun:
        ...


def iter_runs(source: HistorySource) -> Iterator[RecordedRun]:
    """Every run a source offers: ``runs()`` when present, else one record."""
    runs = getattr(source, "runs", None)
    if callable(runs):
        yield from runs()
    else:
        yield source.record()


def _app_replay(
    make_app: Callable[[], AppSpec],
    seed: int,
    backend: Optional[StoreBackend],
) -> ReplayHandle:
    def make_programs():
        app = make_app()
        return app.programs(), app.initial_state()

    return ReplayHandle(make_programs, seed=seed, backend=backend)


class BenchAppSource:
    """Records an :class:`AppSpec` (by class or registered name) in process.

    This wraps today's ``record_observed`` path: the app runs serially with
    latest-writer reads on ``backend`` (default in-memory), producing a
    serializable observed execution plus a replay handle for validation.
    """

    def __init__(
        self,
        app: Union[Type[AppSpec], str],
        config: Optional[WorkloadConfig] = None,
        seed: int = 0,
        backend: Optional[StoreBackend] = None,
    ):
        if isinstance(app, str):
            from .bench_apps import ALL_APPS

            by_name = {a.name: a for a in ALL_APPS}
            if app not in by_name:
                raise ValueError(
                    f"unknown app {app!r}; expected one of "
                    f"{sorted(by_name)}"
                )
            app = by_name[app]
        self.app_cls = app
        self.config = config or WorkloadConfig.small()
        self.seed = seed
        self.backend = backend
        self.name = f"bench:{app.name}"

    def replay_handle(self) -> ReplayHandle:
        """A replay handle without recording — apps replay from scratch."""
        return _app_replay(
            lambda: self.app_cls(self.config), self.seed, self.backend
        )

    def record(self) -> RecordedRun:
        outcome = record_observed(
            self.app_cls(self.config), self.seed, backend=self.backend
        )
        meta = {
            "source": "bench",
            "app": self.app_cls.name,
            "seed": self.seed,
            "workload": self.config.label,
        }
        meta.update(outcome.meta)  # backend provenance (shards, archive id)
        return RecordedRun(
            history=outcome.history,
            meta=meta,
            replay=self.replay_handle(),
            outcome=outcome,
        )


class ProgramsSource:
    """Records raw session programs — no :class:`AppSpec` required.

    ``make_programs`` returns a fresh ``{session: program}`` dict on every
    call (programs may carry state); ``initial`` is t0's key–value writes.
    """

    def __init__(
        self,
        make_programs: Callable[[], dict],
        initial: Optional[dict] = None,
        seed: int = 0,
        name: str = "programs",
        backend: Optional[StoreBackend] = None,
    ):
        self.make_programs = make_programs
        self.initial = dict(initial or {})
        self.seed = seed
        self.name = name
        self.backend = backend

    def replay_handle(self) -> ReplayHandle:
        return ReplayHandle(
            lambda: (self.make_programs(), dict(self.initial)),
            seed=self.seed,
            backend=self.backend,
        )

    def record(self) -> RecordedRun:
        from .store.backend import DEFAULT_BACKEND
        from .store.policies import LatestWriterPolicy

        backend = self.backend or DEFAULT_BACKEND
        run = backend.execute(
            self.make_programs(),
            lambda session: LatestWriterPolicy(),
            initial=dict(self.initial),
            seed=self.seed,
        )
        meta = {"source": "programs", "name": self.name, "seed": self.seed}
        meta.update(getattr(run, "meta", None) or {})
        return RecordedRun(
            history=run.history,
            meta=meta,
            replay=self.replay_handle(),
        )


class TraceFileSource:
    """Loads histories recorded outside this process from JSON/JSONL files.

    Externally recorded traces carry no replayable application, so
    ``RecordedRun.replay`` is ``None`` and ``Analysis.validate`` reports
    the limitation explicitly instead of crashing mid-replay.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.name = f"trace:{self.path.name}"

    def _run_of(self, trace: Trace) -> RecordedRun:
        meta = {"source": "trace", "path": str(self.path)}
        meta.update(trace.meta)
        meta["trace_version"] = trace.version
        return RecordedRun(history=trace.history, meta=meta, replay=None)

    def record(self) -> RecordedRun:
        return next(iter(self.runs()))

    def runs(self) -> Iterator[RecordedRun]:
        yielded = False
        for trace in iter_traces(self.path):
            yielded = True
            yield self._run_of(trace)
        if not yielded:
            raise ValueError(f"no trace documents in {self.path}")


class SqliteTraceSource:
    """Loads executions persisted by a ``sqlite:PATH`` store backend.

    The durable sibling of :class:`TraceFileSource`: one trace document per
    archive row instead of one per JSONL line. ``phase`` selects which
    execution kind to reopen — by default the *recorded* runs, so analyzing
    an archive sees exactly the histories the live pipeline analyzed (the
    backend also persists ``explore`` and ``replay`` executions). Replay is
    unavailable, exactly as for external trace files.

    ``after_id`` starts the read past a known row id, and
    :attr:`last_execution_id` remembers the highest id yielded so far —
    together they make the source *resumable*: reopen with
    ``after_id=previous.last_execution_id`` and only new rows appear. The
    continuously tailing variant is
    :class:`repro.serve.SqliteWatchSource`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        phase: Optional[str] = "record",
        after_id: int = 0,
    ):
        self.path = Path(path)
        self.phase = phase
        self.after_id = after_id
        self.last_execution_id = after_id
        self.name = f"sqlite:{self.path.name}"

    def record(self) -> RecordedRun:
        return next(iter(self.runs()))

    def runs(self) -> Iterator[RecordedRun]:
        from .store.backends import iter_executions

        yielded = False
        for execution_id, trace in iter_executions(
            self.path, self.phase, after_id=self.after_id
        ):
            yielded = True
            self.last_execution_id = max(
                self.last_execution_id, execution_id
            )
            meta = {"source": "sqlite", "path": str(self.path)}
            meta.update(trace.meta)
            meta["execution_id"] = execution_id
            meta["trace_version"] = trace.version
            yield RecordedRun(history=trace.history, meta=meta, replay=None)
        if not yielded:
            raise ValueError(
                f"no {self.phase or 'persisted'} executions in {self.path}"
            )


#: File suffixes `as_source` treats as SQLite execution archives.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


class FuzzSource:
    """Records randomly generated applications (:mod:`repro.fuzz`).

    One ``FuzzSource`` names one shape seed; :meth:`runs` opens a
    continuous stream of new scenarios (successive shape seeds), bounded by
    ``count`` when given. RandomApp shapes are deterministic functions of
    their shape seed, so every fuzz run is fully validatable.

    Passing an explicit ``plan`` (a :class:`repro.fuzz.ProgramPlan`)
    records that exact program instead of a seed-derived one — the path
    the coverage-guided fuzzing engine and the corpus replay suite use;
    mutated plans have no generating shape seed, but remain just as
    deterministic (the plan *is* the shape), so validation still works.
    """

    def __init__(
        self,
        shape_seed: int = 0,
        config: Optional[WorkloadConfig] = None,
        seed: int = 0,
        count: Optional[int] = None,
        backend: Optional[StoreBackend] = None,
        plan=None,
        **shape_kwargs,
    ):
        self.shape_seed = shape_seed
        self.config = config
        self.seed = seed
        self.count = count
        self.backend = backend
        self.plan = plan
        self.shape_kwargs = shape_kwargs
        if plan is not None:
            if shape_kwargs:
                raise ValueError(
                    "shape kwargs configure seed-derived plans; an "
                    "explicit plan is already fully shaped"
                )
            self.name = f"fuzz:plan:{plan.digest()}"
        else:
            self.name = f"fuzz:{shape_seed}"

    def _make_app(self, shape_seed: int):
        from .fuzz import PlanApp, RandomApp

        if self.plan is not None:
            return PlanApp(self.plan, self.config)
        return RandomApp(shape_seed, self.config, **self.shape_kwargs)

    def replay_handle(self, shape_seed: Optional[int] = None) -> ReplayHandle:
        shape_seed = self.shape_seed if shape_seed is None else shape_seed
        return _app_replay(
            lambda: self._make_app(shape_seed), self.seed, self.backend
        )

    def _record_shape(self, shape_seed: int) -> RecordedRun:
        outcome = record_observed(
            self._make_app(shape_seed), self.seed, backend=self.backend
        )
        meta = {"source": "fuzz", "seed": self.seed}
        if self.plan is not None:
            meta["plan"] = self.plan.digest()
        else:
            meta["shape_seed"] = shape_seed
        meta.update(outcome.meta)
        return RecordedRun(
            history=outcome.history,
            meta=meta,
            replay=self.replay_handle(shape_seed),
            outcome=outcome,
        )

    def record(self) -> RecordedRun:
        return self._record_shape(self.shape_seed)

    def runs(self) -> Iterator[RecordedRun]:
        if self.plan is not None:
            # an explicit plan is one scenario, not a seed stream
            yield self.record()
            return
        shape_seed = self.shape_seed
        produced = 0
        while self.count is None or produced < self.count:
            yield self._record_shape(shape_seed)
            shape_seed += 1
            produced += 1


class HistoryValueSource:
    """Wraps an already-built :class:`History` (tests, embedding callers)."""

    def __init__(self, history: History, name: str = "history"):
        self.history = history
        self.name = name

    def record(self) -> RecordedRun:
        return RecordedRun(
            history=self.history, meta={"source": "history"}, replay=None
        )


def as_source(source) -> HistorySource:
    """Coerce the convenient spellings into a :class:`HistorySource`.

    Accepts a source as-is, an :class:`AppSpec` subclass, a trace file path
    (``str``/``Path``), or a bare :class:`History`.
    """
    if isinstance(source, type) and issubclass(source, AppSpec):
        return BenchAppSource(source)
    if isinstance(source, str) and source.startswith("sqlite:"):
        return SqliteTraceSource(source[len("sqlite:"):])
    if isinstance(source, (str, Path)):
        if Path(source).suffix.lower() in _SQLITE_SUFFIXES:
            return SqliteTraceSource(source)
        return TraceFileSource(source)
    if isinstance(source, History):
        return HistoryValueSource(source)
    if isinstance(source, HistorySource):
        return source
    raise TypeError(
        f"cannot build a HistorySource from {source!r}; expected a source, "
        "an AppSpec subclass, a trace path, or a History"
    )
