"""Wikipedia (simplified port): page reads, watchlists, and page updates.

A read-dominated mix (the paper's Table 3 shows ~9 of 10 transactions are
read-only): anonymous/authenticated page reads, watchlist add/remove, and
the occasional ``update_page`` that bumps the page's revision counter and
inserts a revision row — the single writing shape that gives Wikipedia its
few-but-real causal anomalies (§7.2).

Assertion: *revision lineage* — committed revisions of a page must have
distinct revision numbers (two updates reading the same counter is a lost
update, impossible serially).
"""
from __future__ import annotations

import random
from collections import defaultdict

from ..sqlkv.engine import SqlEngine, row_key
from ..store.kvstore import DataStore
from .base import AppSpec

__all__ = ["Wikipedia"]

_PAGES = ("Main_Page", "SQL", "Python")
_USERS = ("u1", "u2", "u3")


class Wikipedia(AppSpec):
    name = "wikipedia"
    ddl = (
        "CREATE TABLE page (title PRIMARY KEY, latest_rev, touched)",
        "CREATE TABLE revision (title PRIMARY KEY, rev PRIMARY KEY, author)",
        "CREATE TABLE watchlist (user PRIMARY KEY, title PRIMARY KEY, active)",
        "CREATE TABLE useracct (user PRIMARY KEY, editcount)",
    )

    def __init__(self, config=None):
        super().__init__(config)
        self._committed_revisions: dict[str, list[int]] = defaultdict(list)

    def initial_state(self) -> dict[str, object]:
        state: dict[str, object] = {}
        for title in _PAGES:
            state[row_key("page", title)] = {
                "title": title,
                "latest_rev": 1,
                "touched": 0,
            }
            state[row_key("revision", title, 1)] = {
                "title": title,
                "rev": 1,
                "author": "init",
            }
        for user in _USERS:
            state[row_key("useracct", user)] = {"user": user, "editcount": 0}
        return state

    def transaction(
        self, engine: SqlEngine, rng: random.Random, session_index: int
    ) -> None:
        kind = rng.choices(
            (
                "get_page_anonymous",
                "get_page_authenticated",
                "add_watchlist",
                "update_page",
            ),
            weights=(60, 24, 8, 8),
        )[0]
        getattr(self, f"_{kind}")(engine, rng)

    def _read_page(self, engine: SqlEngine, title: str) -> int:
        row = engine.query_one(
            "SELECT latest_rev FROM page WHERE title = ?", [title]
        )
        rev = 1 if row is None else row["latest_rev"]
        engine.query_one(
            "SELECT author FROM revision WHERE title = ? AND rev = ?",
            [title, rev],
        )
        return rev

    def _get_page_anonymous(
        self, engine: SqlEngine, rng: random.Random
    ) -> None:
        for _ in range(self.config.ops_scale):
            self._read_page(engine, rng.choice(_PAGES))
        engine.client.commit()

    def _get_page_authenticated(
        self, engine: SqlEngine, rng: random.Random
    ) -> None:
        user = rng.choice(_USERS)
        engine.query_one(
            "SELECT editcount FROM useracct WHERE user = ?", [user]
        )
        for _ in range(self.config.ops_scale):
            self._read_page(engine, rng.choice(_PAGES))
        engine.client.commit()

    def _add_watchlist(self, engine: SqlEngine, rng: random.Random) -> None:
        user = rng.choice(_USERS)
        title = rng.choice(_PAGES)
        engine.query_one(
            "SELECT active FROM watchlist WHERE user = ? AND title = ?",
            [user, title],
        )
        engine.execute(
            "INSERT INTO watchlist (user, title, active) VALUES (?, ?, ?)",
            [user, title, 1],
        )
        engine.client.commit()

    def _update_page(self, engine: SqlEngine, rng: random.Random) -> None:
        user = rng.choice(_USERS)
        title = rng.choice(_PAGES)
        rev = self._read_page(engine, title)
        new_rev = rev + 1
        engine.execute(
            "INSERT INTO revision (title, rev, author) VALUES (?, ?, ?)",
            [title, new_rev, user],
        )
        engine.execute(
            "UPDATE page SET latest_rev = ?, touched = touched + 1 "
            "WHERE title = ?",
            [new_rev, title],
        )
        engine.execute(
            "UPDATE useracct SET editcount = editcount + 1 WHERE user = ?",
            [user],
        )
        if engine.client.commit() is not None:
            self._committed_revisions[title].append(new_rev)

    def check_assertions(self, store: DataStore) -> list[str]:
        failures = []
        for title, revs in self._committed_revisions.items():
            if len(set(revs)) != len(revs):
                dupes = sorted({r for r in revs if revs.count(r) > 1})
                failures.append(
                    f"page {title!r} has duplicate revisions: {dupes}"
                )
        return failures
