"""Scenario workloads that only make sense over a sharded keyspace.

Two workloads designed for the :class:`~repro.store.backends.ShardedBackend`:

* :class:`ShardTransfer` — a cross-shard money-transfer app. Accounts
  hash across shards, so a ``transfer`` is usually a *cross-shard*
  transaction (read on one shard, writes on two) and the ``audit``
  transaction reads every shard in one go. Under weak isolation a lost
  update between two transfers breaks per-account conservation — and on
  a ``sharded:N:local`` store the anomaly can span shards that never
  coordinated, the workload class the paper's single-store benchmarks
  cannot express.
* :class:`ShardedSmallbank` — the multi-shard Smallbank tier: the classic
  six-transaction mix over a 3× larger account population partitioned
  into per-session "home" regions. Sessions mostly stay home
  (single-shard traffic) and occasionally pay across partitions, so the
  recorded history mixes single- and cross-shard transactions in a
  controlled ratio — exactly what the sharded backend's meta attribution
  (``cross_shard_txns``) is meant to measure.

Both run unchanged on any store backend (an app never knows where its
keys live); "sharded" names the topology they are *designed to stress*,
and the cross-backend equivalence suite relies on them running on the
in-memory store too.
"""
from __future__ import annotations

import random

from ..sqlkv.engine import SqlEngine, row_key
from ..store.kvstore import DataStore
from .base import AppSpec
from .smallbank import Smallbank

__all__ = ["ShardTransfer", "ShardedSmallbank"]

_N_ACCOUNTS = 8
_INITIAL_BALANCE = 100


class ShardTransfer(AppSpec):
    """Cross-shard transfers with a global conservation assertion."""

    name = "shardtransfer"
    ddl = ("CREATE TABLE accounts (name PRIMARY KEY, bal)",)

    accounts = tuple(f"acct{i}" for i in range(_N_ACCOUNTS))

    def __init__(self, config=None):
        super().__init__(config)
        self._deltas: dict[str, int] = {name: 0 for name in self.accounts}

    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, object]:
        return {
            row_key("accounts", name): {"name": name, "bal": _INITIAL_BALANCE}
            for name in self.accounts
        }

    # ------------------------------------------------------------------
    def transaction(
        self, engine: SqlEngine, rng: random.Random, session_index: int
    ) -> None:
        # transfers dominate; deposits keep balances growing (so transfers
        # rarely abort), audits add the multi-shard read-only shape
        kind = rng.choice(
            ("transfer", "transfer", "transfer", "deposit", "audit")
        )
        getattr(self, f"_{kind}")(engine, rng)

    def _read_balance(self, engine: SqlEngine, name: str) -> int:
        row = engine.query_one(
            "SELECT bal FROM accounts WHERE name = ?", [name]
        )
        return 0 if row is None else row["bal"]

    def _transfer(self, engine: SqlEngine, rng: random.Random) -> None:
        src, dst = rng.sample(list(self.accounts), 2)
        amount = rng.randint(1, 60)
        balance = self._read_balance(engine, src)
        if balance < amount:
            engine.client.rollback()  # application-level abort
            return
        engine.execute(
            "UPDATE accounts SET bal = bal - ? WHERE name = ?",
            [amount, src],
        )
        engine.execute(
            "UPDATE accounts SET bal = bal + ? WHERE name = ?",
            [amount, dst],
        )
        if engine.client.commit() is not None:
            self._deltas[src] -= amount
            self._deltas[dst] += amount

    def _deposit(self, engine: SqlEngine, rng: random.Random) -> None:
        name = rng.choice(self.accounts)
        amount = rng.randint(1, 40)
        engine.execute(
            "UPDATE accounts SET bal = bal + ? WHERE name = ?",
            [amount, name],
        )
        if engine.client.commit() is not None:
            self._deltas[name] += amount

    def _audit(self, engine: SqlEngine, rng: random.Random) -> None:
        # one read-only sweep over the whole (multi-shard) account space
        for _ in range(self.config.ops_scale):
            for name in self.accounts:
                self._read_balance(engine, name)
        engine.client.commit()

    # ------------------------------------------------------------------
    def check_assertions(self, store: DataStore) -> list[str]:
        failures = []
        for name in self.accounts:
            key = row_key("accounts", name)
            row = store.value_written(store.latest_writer(key), key)
            actual = row["bal"] if isinstance(row, dict) else 0
            expected = _INITIAL_BALANCE + self._deltas[name]
            if actual != expected:
                failures.append(
                    f"conservation violated for accounts:{name}: "
                    f"expected {expected}, found {actual}"
                )
        return failures


class ShardedSmallbank(Smallbank):
    """Smallbank over partitioned accounts with per-session home regions.

    Three partitions of the classic five accounts (15 total). A session's
    home partition is ``session_index % 3``; account picks stay home 75%
    of the time, and pair picks (amalgamate / send-payment) cross into a
    foreign partition 40% of the time. The six transaction programs, the
    abort logic, and the money-conservation assertion are inherited
    unchanged from :class:`Smallbank`.
    """

    name = "smallbank_sharded"

    PARTITIONS = 3
    HOME_BIAS = 0.75
    CROSS_PAIR_RATE = 0.4

    accounts = tuple(
        f"{name}_p{p}"
        for p in range(PARTITIONS)
        for name in ("alice", "bob", "carol", "dave", "erin")
    )

    def __init__(self, config=None):
        super().__init__(config)
        self._partitions = tuple(
            tuple(a for a in self.accounts if a.endswith(f"_p{p}"))
            for p in range(self.PARTITIONS)
        )
        self._home = 0

    def transaction(
        self, engine: SqlEngine, rng: random.Random, session_index: int
    ) -> None:
        # Sessions run one at a time and only switch at store operations,
        # all of which come after the account picks in every program —
        # setting the home partition here is race-free by construction.
        self._home = session_index % self.PARTITIONS
        super().transaction(engine, rng, session_index)

    def _pick(self, rng: random.Random) -> str:
        pool = (
            self._partitions[self._home]
            if rng.random() < self.HOME_BIAS
            else self.accounts
        )
        return rng.choice(pool)

    def _pick_pair(self, rng: random.Random) -> tuple[str, str]:
        home = self._partitions[self._home]
        if rng.random() < self.CROSS_PAIR_RATE:
            # cross-partition payment: home source, foreign destination
            src = rng.choice(home)
            foreign = tuple(a for a in self.accounts if a not in home)
            return src, rng.choice(foreign)
        src, dst = rng.sample(list(home), 2)
        return src, dst
