"""Smallbank: checking/savings accounts with six transaction types.

The classic OLTP-Bench banking mix (balance, deposit-checking,
transact-savings, amalgamate, write-check, send-payment) over a small,
contended account population. ``send_payment`` and ``transact_savings``
abort on insufficient funds — the application-specific abort logic the
paper notes for all programs except Voter.

Assertion (MonkeyDB-style): *money conservation* — each account's final
checking+savings balance must equal the initial balance plus the sum of the
deltas applied by committed transactions. A lost update (two transactions
reading the same version) breaks conservation, and conservation always
holds in a serial execution, so a failure certifies unserializability.
"""
from __future__ import annotations

import random
from collections import defaultdict

from ..sqlkv.engine import SqlEngine, row_key
from ..store.kvstore import DataStore
from .base import AppSpec

__all__ = ["Smallbank"]

_ACCOUNTS = ("alice", "bob", "carol", "dave", "erin")
_INITIAL_BALANCE = 100


class Smallbank(AppSpec):
    name = "smallbank"
    ddl = (
        "CREATE TABLE checking (name PRIMARY KEY, bal)",
        "CREATE TABLE savings (name PRIMARY KEY, bal)",
    )

    #: Account population; subclasses may widen it (multi-shard tiers).
    accounts: tuple[str, ...] = _ACCOUNTS

    def __init__(self, config=None):
        super().__init__(config)
        # committed intents, applied deltas per (table, account); the
        # assertion compares these against the final store state
        self._deltas: dict[tuple[str, str], int] = defaultdict(int)

    # -- account selection (overridden by the multi-shard tier) ---------
    def _pick(self, rng: random.Random) -> str:
        return rng.choice(self.accounts)

    def _pick_pair(self, rng: random.Random) -> tuple[str, str]:
        src, dst = rng.sample(list(self.accounts), 2)
        return src, dst

    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, object]:
        state: dict[str, object] = {}
        for name in self.accounts:
            state[row_key("checking", name)] = {
                "name": name,
                "bal": _INITIAL_BALANCE,
            }
            state[row_key("savings", name)] = {
                "name": name,
                "bal": _INITIAL_BALANCE,
            }
        return state

    # ------------------------------------------------------------------
    def transaction(
        self, engine: SqlEngine, rng: random.Random, session_index: int
    ) -> None:
        kind = rng.choice(
            (
                "balance",
                "deposit_checking",
                "transact_savings",
                "amalgamate",
                "write_check",
                "send_payment",
            )
        )
        getattr(self, f"_{kind}")(engine, rng)

    def _read_balance(self, engine: SqlEngine, table: str, name: str) -> int:
        row = engine.query_one(
            f"SELECT bal FROM {table} WHERE name = ?", [name]
        )
        return 0 if row is None else row["bal"]

    def _balance(self, engine: SqlEngine, rng: random.Random) -> None:
        name = self._pick(rng)
        for _ in range(self.config.ops_scale):
            self._read_balance(engine, "checking", name)
            self._read_balance(engine, "savings", name)
        engine.client.commit()

    def _deposit_checking(self, engine: SqlEngine, rng: random.Random) -> None:
        name = self._pick(rng)
        amount = rng.randint(1, 50)
        engine.execute(
            "UPDATE checking SET bal = bal + ? WHERE name = ?",
            [amount, name],
        )
        tid = engine.client.commit()
        if tid is not None:
            self._deltas[("checking", name)] += amount

    def _transact_savings(self, engine: SqlEngine, rng: random.Random) -> None:
        name = self._pick(rng)
        amount = rng.randint(-120, 80)
        balance = self._read_balance(engine, "savings", name)
        if balance + amount < 0:
            engine.client.rollback()  # application-level abort
            return
        engine.execute(
            "UPDATE savings SET bal = bal + ? WHERE name = ?",
            [amount, name],
        )
        if engine.client.commit() is not None:
            self._deltas[("savings", name)] += amount

    def _amalgamate(self, engine: SqlEngine, rng: random.Random) -> None:
        src, dst = self._pick_pair(rng)
        savings = self._read_balance(engine, "savings", src)
        checking = self._read_balance(engine, "checking", src)
        total = savings + checking
        engine.execute("UPDATE savings SET bal = 0 WHERE name = ?", [src])
        engine.execute("UPDATE checking SET bal = 0 WHERE name = ?", [src])
        engine.execute(
            "UPDATE checking SET bal = bal + ? WHERE name = ?",
            [total, dst],
        )
        if engine.client.commit() is not None:
            self._deltas[("savings", src)] -= savings
            self._deltas[("checking", src)] -= checking
            self._deltas[("checking", dst)] += total

    def _write_check(self, engine: SqlEngine, rng: random.Random) -> None:
        name = self._pick(rng)
        amount = rng.randint(1, 60)
        savings = self._read_balance(engine, "savings", name)
        checking = self._read_balance(engine, "checking", name)
        penalty = 1 if savings + checking < amount else 0
        charge = amount + penalty
        engine.execute(
            "UPDATE checking SET bal = bal - ? WHERE name = ?",
            [charge, name],
        )
        if engine.client.commit() is not None:
            self._deltas[("checking", name)] -= charge

    def _send_payment(self, engine: SqlEngine, rng: random.Random) -> None:
        src, dst = self._pick_pair(rng)
        amount = rng.randint(1, 80)
        balance = self._read_balance(engine, "checking", src)
        if balance < amount:
            engine.client.rollback()  # application-level abort
            return
        engine.execute(
            "UPDATE checking SET bal = bal - ? WHERE name = ?",
            [amount, src],
        )
        engine.execute(
            "UPDATE checking SET bal = bal + ? WHERE name = ?",
            [amount, dst],
        )
        if engine.client.commit() is not None:
            self._deltas[("checking", src)] -= amount
            self._deltas[("checking", dst)] += amount

    # ------------------------------------------------------------------
    def check_assertions(self, store: DataStore) -> list[str]:
        failures = []
        for table in ("checking", "savings"):
            for name in self.accounts:
                key = row_key(table, name)
                writer = store.latest_writer(key)
                row = store.value_written(writer, key)
                actual = row["bal"] if isinstance(row, dict) else 0
                expected = _INITIAL_BALANCE + self._deltas[(table, name)]
                if actual != expected:
                    failures.append(
                        f"conservation violated for {table}:{name}: "
                        f"expected {expected}, found {actual}"
                    )
        return failures
