"""Shared machinery for the benchmark applications.

Determinism contract (paper §7.1): given a :class:`WorkloadConfig` and a
seed, every session issues a fixed sequence of transaction *intents*; the
only nondeterminism left is the scheduler's interleaving, which is itself
seeded. Validation replays the same programs with the same seed.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..history.model import History
from ..isolation.levels import IsolationLevel
from ..store.backend import DEFAULT_BACKEND, StoreBackend
from ..store.client import Client
from ..store.kvstore import DataStore
from ..store.policies import LatestWriterPolicy, RandomIsolationPolicy
from ..sqlkv.engine import SqlEngine, build_schemas

__all__ = [
    "WorkloadConfig",
    "AppSpec",
    "RunOutcome",
    "record_observed",
    "run_random_weak",
    "run_interleaved_rc",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload shape: the paper's small/large plus keyspace scale knobs.

    The paper's ported benchmarks issue hundreds to thousands of KV
    accesses per run (Table 3); ``ops_scale`` multiplies the per-transaction
    access counts so laptop-friendly defaults (scale 1) can be raised toward
    paper-scale event counts.
    """

    sessions: int = 3
    txns_per_session: int = 4  # 4 = the paper's small workload, 8 = large
    ops_scale: int = 1
    label: str = "small"

    @classmethod
    def small(cls, ops_scale: int = 1) -> "WorkloadConfig":
        return cls(3, 4, ops_scale, "small")

    @classmethod
    def large(cls, ops_scale: int = 1) -> "WorkloadConfig":
        return cls(3, 8, ops_scale, "large")

    @classmethod
    def tiny(cls) -> "WorkloadConfig":
        """A fast shape for unit tests: 2 sessions × 2 transactions."""
        return cls(2, 2, 1, "tiny")


class AppSpec:
    """A benchmark application: schema, initial data, programs, assertions."""

    name: str = "app"
    ddl: tuple[str, ...] = ()

    def __init__(self, config: Optional[WorkloadConfig] = None):
        self.config = config or WorkloadConfig.small()
        self.schemas = build_schemas(list(self.ddl))

    # -- to implement ---------------------------------------------------
    def initial_state(self) -> dict[str, object]:
        """Pre-loaded rows, keyed ``table:pk`` (t0's writes)."""
        raise NotImplementedError

    def transaction(
        self, engine: SqlEngine, rng: random.Random, session_index: int
    ) -> None:
        """Issue one transaction (ending in commit or rollback)."""
        raise NotImplementedError

    def check_assertions(self, store: DataStore) -> list[str]:
        """MonkeyDB-style invariant checks over the finished run.

        Returns failure descriptions; every failure certifies an
        unserializable execution (sufficient, not necessary — Table 6/7).
        """
        raise NotImplementedError

    # -- provided -------------------------------------------------------
    def engine(self, client: Client) -> SqlEngine:
        return SqlEngine(client, self.schemas)

    def programs(self) -> dict[str, Callable]:
        """One session program per session, deterministic modulo scheduling."""
        out = {}
        for index in range(self.config.sessions):
            session = f"s{index + 1}"

            def program(client, rng, index=index):
                engine = self.engine(client)
                for _ in range(self.config.txns_per_session):
                    self.transaction(engine, rng, index)
                if client.in_transaction:  # defensive: apps must commit
                    client.rollback()

            out[session] = program
        return out


@dataclass
class RunOutcome:
    """One benchmark execution: its history, store, and assertion failures.

    ``store`` is the backend-specific finished store handle (any object
    presenting the :class:`DataStore` query surface the app's assertions
    consume); ``meta`` carries the backend's provenance (shard topology,
    sqlite execution ids) into the recorded run's meta.
    """

    app: AppSpec
    history: History
    store: DataStore
    failures: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def assertion_failed(self) -> bool:
        return bool(self.failures)


def _run(
    app: AppSpec,
    policy_factory,
    seed: int,
    interleaved=False,
    backend: Optional[StoreBackend] = None,
) -> RunOutcome:
    backend = backend or DEFAULT_BACKEND
    run = backend.execute(
        app.programs(),
        policy_factory,
        initial=app.initial_state(),
        seed=seed,
        interleaved=interleaved,
    )
    return RunOutcome(
        app=app,
        history=run.history,
        store=run.store,
        failures=app.check_assertions(run.store),
        meta=dict(getattr(run, "meta", None) or {}),
    )


def record_observed(
    app: AppSpec, seed: int, backend: Optional[StoreBackend] = None
) -> RunOutcome:
    """Record a serializable observed execution (§6: serial + latest reads)."""
    return _run(app, lambda s: LatestWriterPolicy(), seed, backend=backend)


def run_random_weak(
    app: AppSpec,
    seed: int,
    level: IsolationLevel,
    backend: Optional[StoreBackend] = None,
) -> RunOutcome:
    """MonkeyDB testing mode: random isolation-legal reads (§7.3)."""
    rng = random.Random(f"weak:{seed}")
    policy = RandomIsolationPolicy(level, rng)
    return _run(app, lambda s: policy, seed, backend=backend)


def run_interleaved_rc(
    app: AppSpec, seed: int, backend: Optional[StoreBackend] = None
) -> RunOutcome:
    """The MySQL stand-in: statement-interleaved, latest-committed reads."""
    return _run(
        app,
        lambda s: LatestWriterPolicy(),
        seed,
        interleaved=True,
        backend=backend,
    )
