"""Voter: phone-in voting with a per-phone vote limit (paper Algorithm 3).

Every transaction runs ``Vote``: read the contestant roster and the
caller's vote count; if the caller has not voted yet, record the vote
(several writes). Under a serializable execution only the *first* vote
transaction writes — the paper's observation that "every observed execution
of Voter has only one writing transaction", which is why IsoPredict can
never predict a causal unserializable execution for it (§7.2, footnote 5).

Assertion: the caller's vote limit (1) is respected — more than one
committed vote-recording transaction certifies unserializability.
"""
from __future__ import annotations

import random

from ..sqlkv.engine import SqlEngine, row_key
from ..store.kvstore import DataStore
from .base import AppSpec

__all__ = ["Voter"]

_CONTESTANTS = ("c1", "c2", "c3")
_PHONE = "5551234"
_VOTE_LIMIT = 1


class Voter(AppSpec):
    name = "voter"
    ddl = (
        "CREATE TABLE contestants (id PRIMARY KEY, name)",
        "CREATE TABLE area_codes (code PRIMARY KEY, state)",
        "CREATE TABLE votes_by_phone (phone PRIMARY KEY, votes)",
        "CREATE TABLE votes (phone PRIMARY KEY, contestant, num)",
        "CREATE TABLE totals (id PRIMARY KEY, total)",
    )

    def initial_state(self) -> dict[str, object]:
        state: dict[str, object] = {}
        for cid in _CONTESTANTS:
            state[row_key("contestants", cid)] = {"id": cid, "name": cid}
            state[row_key("totals", cid)] = {"id": cid, "total": 0}
        state[row_key("area_codes", "555")] = {"code": "555", "state": "OH"}
        state[row_key("votes_by_phone", _PHONE)] = {
            "phone": _PHONE,
            "votes": 0,
        }
        return state

    def transaction(
        self, engine: SqlEngine, rng: random.Random, session_index: int
    ) -> None:
        contestant = rng.choice(_CONTESTANTS)
        # the roster / area-code reads of the OLTP-Bench port
        for _ in range(self.config.ops_scale):
            for cid in _CONTESTANTS:
                engine.query_one(
                    "SELECT name FROM contestants WHERE id = ?", [cid]
                )
            engine.query_one(
                "SELECT state FROM area_codes WHERE code = ?", ["555"]
            )
        row = engine.query_one(
            "SELECT votes FROM votes_by_phone WHERE phone = ?", [_PHONE]
        )
        votes = 0 if row is None else row["votes"]
        if votes < _VOTE_LIMIT:
            engine.execute(
                "UPDATE votes_by_phone SET votes = ? WHERE phone = ?",
                [votes + 1, _PHONE],
            )
            engine.execute(
                "INSERT INTO votes (phone, contestant, num) VALUES (?, ?, ?)",
                [_PHONE, contestant, votes + 1],
            )
            engine.execute(
                "UPDATE totals SET total = total + 1 WHERE id = ?",
                [contestant],
            )
        engine.client.commit()

    def check_assertions(self, store: DataStore) -> list[str]:
        vote_writers = [
            txn.tid
            for txn in store.committed()
            if any(
                w.key == row_key("votes_by_phone", _PHONE)
                for w in txn.writes
            )
        ]
        if len(vote_writers) > _VOTE_LIMIT:
            return [
                f"phone {_PHONE} voted {len(vote_writers)} times "
                f"(limit {_VOTE_LIMIT}): {vote_writers}"
            ]
        return []
