"""TPC-C (simplified port): order processing over warehouse/district rows.

The write-heavy mix of the paper's Table 3: ``new_order`` (read-modify-write
on the district's next order id, stock updates, order insertion),
``payment`` (warehouse/district/customer balance updates), ``order_status``
(read-only) and ``delivery``. Scale knobs keep the keyspace small so the
district counter is contended, which is where TPC-C's anomalies live.

Assertions:
* *unique order ids* — two committed ``new_order`` transactions inserting
  the same (w, d, o_id) means both read the same ``next_o_id``: a classic
  lost update, impossible serially;
* *district counter consistency* — final ``next_o_id`` must have advanced
  by exactly the number of committed new orders.
"""
from __future__ import annotations

import random
from collections import defaultdict

from ..sqlkv.engine import SqlEngine, row_key
from ..store.kvstore import DataStore
from .base import AppSpec

__all__ = ["TPCC"]

_WAREHOUSE = 1
_DISTRICTS = (1, 2)
_CUSTOMERS = (1, 2, 3)
_ITEMS = (1, 2, 3, 4, 5)
_INITIAL_NEXT_O_ID = 3001


class TPCC(AppSpec):
    name = "tpcc"
    ddl = (
        "CREATE TABLE warehouse (w_id PRIMARY KEY, ytd)",
        "CREATE TABLE district (w_id PRIMARY KEY, d_id PRIMARY KEY, "
        "next_o_id, ytd)",
        "CREATE TABLE customer (w_id PRIMARY KEY, d_id PRIMARY KEY, "
        "c_id PRIMARY KEY, balance, payment_cnt)",
        "CREATE TABLE item (i_id PRIMARY KEY, price)",
        "CREATE TABLE stock (w_id PRIMARY KEY, i_id PRIMARY KEY, quantity)",
        "CREATE TABLE orders (w_id PRIMARY KEY, d_id PRIMARY KEY, "
        "o_id PRIMARY KEY, c_id, carrier)",
        "CREATE TABLE order_line (w_id PRIMARY KEY, d_id PRIMARY KEY, "
        "o_id PRIMARY KEY, i_id PRIMARY KEY, qty)",
    )

    def __init__(self, config=None):
        super().__init__(config)
        self._committed_new_orders: dict[tuple[int, int], list[int]] = (
            defaultdict(list)
        )

    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, object]:
        state: dict[str, object] = {
            row_key("warehouse", _WAREHOUSE): {"w_id": _WAREHOUSE, "ytd": 0}
        }
        for d in _DISTRICTS:
            state[row_key("district", _WAREHOUSE, d)] = {
                "w_id": _WAREHOUSE,
                "d_id": d,
                "next_o_id": _INITIAL_NEXT_O_ID,
                "ytd": 0,
            }
            for c in _CUSTOMERS:
                state[row_key("customer", _WAREHOUSE, d, c)] = {
                    "w_id": _WAREHOUSE,
                    "d_id": d,
                    "c_id": c,
                    "balance": 0,
                    "payment_cnt": 0,
                }
        for i in _ITEMS:
            state[row_key("item", i)] = {"i_id": i, "price": i * 10}
            state[row_key("stock", _WAREHOUSE, i)] = {
                "w_id": _WAREHOUSE,
                "i_id": i,
                "quantity": 1000,
            }
        return state

    # ------------------------------------------------------------------
    def transaction(
        self, engine: SqlEngine, rng: random.Random, session_index: int
    ) -> None:
        # OLTP-Bench's weighted mix, biased toward new-order/payment
        kind = rng.choices(
            ("new_order", "payment", "order_status", "delivery"),
            weights=(45, 43, 8, 4),
        )[0]
        getattr(self, f"_{kind}")(engine, rng)

    def _new_order(self, engine: SqlEngine, rng: random.Random) -> None:
        d = rng.choice(_DISTRICTS)
        c = rng.choice(_CUSTOMERS)
        n_items = min(len(_ITEMS), 2 * self.config.ops_scale)
        items = rng.sample(list(_ITEMS), n_items)
        row = engine.query_one(
            "SELECT next_o_id FROM district WHERE w_id = ? AND d_id = ?",
            [_WAREHOUSE, d],
        )
        o_id = row["next_o_id"]
        # ~1% of OLTP-Bench new-orders abort on an invalid item; the port
        # keeps a seeded application abort to exercise rollback handling
        if rng.random() < 0.04:
            engine.client.rollback()
            return
        engine.execute(
            "UPDATE district SET next_o_id = ? WHERE w_id = ? AND d_id = ?",
            [o_id + 1, _WAREHOUSE, d],
        )
        engine.query_one(
            "SELECT balance FROM customer "
            "WHERE w_id = ? AND d_id = ? AND c_id = ?",
            [_WAREHOUSE, d, c],
        )
        total = 0
        for i in items:
            price_row = engine.query_one(
                "SELECT price FROM item WHERE i_id = ?", [i]
            )
            total += price_row["price"]
            engine.execute(
                "UPDATE stock SET quantity = quantity - 1 "
                "WHERE w_id = ? AND i_id = ?",
                [_WAREHOUSE, i],
            )
            engine.execute(
                "INSERT INTO order_line (w_id, d_id, o_id, i_id, qty) "
                "VALUES (?, ?, ?, ?, ?)",
                [_WAREHOUSE, d, o_id, i, 1],
            )
        engine.execute(
            "INSERT INTO orders (w_id, d_id, o_id, c_id, carrier) "
            "VALUES (?, ?, ?, ?, ?)",
            [_WAREHOUSE, d, o_id, c, 0],
        )
        if engine.client.commit() is not None:
            self._committed_new_orders[(_WAREHOUSE, d)].append(o_id)

    def _payment(self, engine: SqlEngine, rng: random.Random) -> None:
        d = rng.choice(_DISTRICTS)
        c = rng.choice(_CUSTOMERS)
        amount = rng.randint(1, 500)
        engine.execute(
            "UPDATE warehouse SET ytd = ytd + ? WHERE w_id = ?",
            [amount, _WAREHOUSE],
        )
        engine.execute(
            "UPDATE district SET ytd = ytd + ? WHERE w_id = ? AND d_id = ?",
            [amount, _WAREHOUSE, d],
        )
        engine.execute(
            "UPDATE customer SET balance = balance - ?, "
            "payment_cnt = payment_cnt + 1 "
            "WHERE w_id = ? AND d_id = ? AND c_id = ?",
            [amount, _WAREHOUSE, d, c],
        )
        engine.client.commit()

    def _order_status(self, engine: SqlEngine, rng: random.Random) -> None:
        d = rng.choice(_DISTRICTS)
        c = rng.choice(_CUSTOMERS)
        engine.query_one(
            "SELECT balance FROM customer "
            "WHERE w_id = ? AND d_id = ? AND c_id = ?",
            [_WAREHOUSE, d, c],
        )
        row = engine.query_one(
            "SELECT next_o_id FROM district WHERE w_id = ? AND d_id = ?",
            [_WAREHOUSE, d],
        )
        last = row["next_o_id"] - 1
        engine.query_one(
            "SELECT c_id FROM orders WHERE w_id = ? AND d_id = ? AND o_id = ?",
            [_WAREHOUSE, d, last],
        )
        engine.client.commit()

    def _delivery(self, engine: SqlEngine, rng: random.Random) -> None:
        d = rng.choice(_DISTRICTS)
        row = engine.query_one(
            "SELECT next_o_id FROM district WHERE w_id = ? AND d_id = ?",
            [_WAREHOUSE, d],
        )
        last = row["next_o_id"] - 1
        order = engine.query_one(
            "SELECT c_id FROM orders WHERE w_id = ? AND d_id = ? AND o_id = ?",
            [_WAREHOUSE, d, last],
        )
        if order is None:
            engine.client.rollback()
            return
        engine.execute(
            "UPDATE orders SET carrier = 7 "
            "WHERE w_id = ? AND d_id = ? AND o_id = ?",
            [_WAREHOUSE, d, last],
        )
        engine.execute(
            "UPDATE customer SET balance = balance + 1 "
            "WHERE w_id = ? AND d_id = ? AND c_id = ?",
            [_WAREHOUSE, d, order["c_id"]],
        )
        engine.client.commit()

    # ------------------------------------------------------------------
    def check_assertions(self, store: DataStore) -> list[str]:
        failures = []
        for (w, d), o_ids in self._committed_new_orders.items():
            if len(set(o_ids)) != len(o_ids):
                dupes = sorted(
                    {o for o in o_ids if o_ids.count(o) > 1}
                )
                failures.append(
                    f"duplicate order ids in district {w}:{d}: {dupes}"
                )
            key = row_key("district", w, d)
            row = store.value_written(store.latest_writer(key), key)
            final_next = (
                row["next_o_id"]
                if isinstance(row, dict)
                else _INITIAL_NEXT_O_ID
            )
            expected = _INITIAL_NEXT_O_ID + len(o_ids)
            if final_next != expected:
                failures.append(
                    f"district {w}:{d} next_o_id skew: "
                    f"expected {expected}, found {final_next}"
                )
        return failures
