"""OLTP-Bench benchmark applications, ported as in the paper (§7.1).

Four transactional workloads — Smallbank, Voter, TPC-C, Wikipedia — written
against the SQL-to-KV layer, determinized exactly as the paper describes:
a fixed number of sessions and transactions per session, and an RNG seed
parameter. Each app carries MonkeyDB-style assertions whose failure is a
*sufficient* condition for unserializability (Tables 6 and 7).
"""
from .base import (
    AppSpec,
    RunOutcome,
    WorkloadConfig,
    record_observed,
    run_interleaved_rc,
    run_random_weak,
)
from .smallbank import Smallbank
from .sharded import ShardTransfer, ShardedSmallbank
from .voter import Voter
from .tpcc import TPCC
from .wikipedia import Wikipedia

ALL_APPS = (
    Smallbank,
    Voter,
    TPCC,
    Wikipedia,
    ShardTransfer,
    ShardedSmallbank,
)

__all__ = [
    "ALL_APPS",
    "AppSpec",
    "RunOutcome",
    "ShardTransfer",
    "ShardedSmallbank",
    "Smallbank",
    "TPCC",
    "Voter",
    "Wikipedia",
    "WorkloadConfig",
    "record_observed",
    "run_interleaved_rc",
    "run_random_weak",
]
