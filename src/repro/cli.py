"""Command-line interface: analyze / record / predict / check / campaign.

Examples::

    isopredict analyze --app smallbank --seed 3 --isolation causal
    isopredict analyze --trace saved.json --isolation rc --k 3
    isopredict analyze --app smallbank --solver portfolio --portfolio 4
    isopredict analyze --app tpcc --solver dimacs:minisat --budget 30s
    isopredict analyze --app shardtransfer --backend sharded:4
    isopredict analyze --app smallbank --backend sqlite:runs.sqlite
    isopredict analyze --trace runs.sqlite --isolation causal
    isopredict record --app smallbank --seed 3 --out trace.json
    isopredict predict trace.json --isolation causal --strategy approx-relaxed
    isopredict check trace.json
    isopredict render trace.json --format dot
    isopredict bench --app voter --isolation rc --seeds 10
    isopredict campaign --apps smallbank,voter --isolation causal,rc \\
        --seeds 4 --jobs 4 --out campaign.jsonl
    isopredict fleet plan --spec sweep.toml --fleet 3 --out fleet/manifest.json
    isopredict campaign --manifest fleet/manifest.json --worker-id 0
    isopredict fleet merge --manifest fleet/manifest.json --resume \\
        --report report.json
    isopredict archive compact merged.sqlite worker-*/archive.sqlite
    isopredict fuzz --iterations 60 --seed 1 --out fuzzdir
    isopredict fuzz --minutes 10 --jobs 4 --backend sharded:2 --out fuzzdir

``analyze`` is the source-agnostic entry point (``--app``, ``--trace``, or
``--fuzz``); ``predict``/``validate``/``bench`` are the stage-by-stage
spellings, all routed through the same :class:`repro.api.Analysis` session.
See README.md for the full tour, including how each paper table and figure
maps onto these commands.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api import Analysis, AnalysisResult
from .bench_apps import ALL_APPS, WorkloadConfig, record_observed
from .history import load_history, save_history
from .isolation import (
    IsolationLevel,
    is_causal,
    is_read_committed,
    is_serializable,
    pco_unserializable,
)
from .predict import PredictionStrategy
from .smt import BackendUnavailable, Result
from .sources import BenchAppSource, FuzzSource, TraceFileSource
from .viz import history_to_dot, history_to_text

__all__ = ["main"]

_APPS = {app.name: app for app in ALL_APPS}


def _workload(args) -> WorkloadConfig:
    if args.workload == "small":
        return WorkloadConfig.small(args.ops_scale)
    return WorkloadConfig.large(args.ops_scale)


def _store_backend(args):
    """The parsed --backend selection (None for the in-memory default)."""
    spec = getattr(args, "backend", "inmemory")
    from .store.backends import make_store_backend, store_backend_spec

    try:
        if store_backend_spec(spec) == "inmemory":
            return None
        return make_store_backend(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_record(args) -> int:
    app_cls = _APPS[args.app]
    outcome = record_observed(
        app_cls(_workload(args)), args.seed, backend=_store_backend(args)
    )
    meta = {
        "app": args.app,
        "seed": args.seed,
        "workload": args.workload,
        "isolation": "serializable",  # observed recordings are serial
    }
    meta.update(outcome.meta)  # backend provenance (shards, archive id)
    save_history(outcome.history, args.out, meta=meta)
    h = outcome.history
    reads = sum(len(t.reads) for t in h.transactions())
    writes = sum(len(t.writes) for t in h.transactions())
    print(
        f"recorded {args.app} seed={args.seed}: {len(h)} committed "
        f"transactions, {reads} reads, {writes} writes -> {args.out}"
    )
    return 0


def _print_prediction(result, args) -> None:
    """The shared report block for predict/analyze."""
    print(f"prediction: {result.status.value}")
    stats = result.stats
    print(
        f"  literals={stats.get('literals', 0)} "
        f"gen={stats.get('gen_seconds', 0):.2f}s "
        f"solve={stats.get('solve_seconds', 0):.2f}s"
    )
    backend = stats.get("backend")
    if backend and backend != "inprocess":
        print(f"  solver: {backend}")
    if getattr(args, "profile", False):
        from .perf import format_profile

        print(format_profile(stats))
    if result.found:
        print(f"  boundaries: {result.boundaries}")
        print(f"  pco cycle:  {' < '.join(result.cycle)}")
        shown = result.predicted
        if getattr(args, "minimize", False):
            from .minimize import minimize_witness

            shown = minimize_witness(shown)
            print(
                f"  minimized witness: {len(shown)} of "
                f"{len(result.predicted)} transactions"
            )
        print(history_to_text(shown, include_pco=True))
        if args.out:
            save_history(result.predicted, args.out)
            print(f"  predicted history written to {args.out}")


def _solver_options(args) -> dict:
    """The ``using()`` kwargs for the --solver/--portfolio/--budget flags."""
    spec = getattr(args, "solver", "inprocess")
    portfolio = getattr(args, "portfolio", None)
    if portfolio is not None:
        if spec != "inprocess" and not spec.startswith("portfolio"):
            print(
                f"error: --portfolio conflicts with --solver {spec}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        spec = f"portfolio:{portfolio}"
    if getattr(args, "deterministic", False):
        if not spec.startswith("portfolio"):
            print(
                "error: --deterministic only applies to --solver portfolio",
                file=sys.stderr,
            )
            raise SystemExit(2)
        if "deterministic" not in spec:
            spec += ":deterministic"
    options = {"solver": spec}
    if getattr(args, "budget", None):
        options["budget"] = args.budget
    return options


def _cmd_predict(args) -> int:
    session = (
        Analysis(TraceFileSource(args.trace))
        .under(IsolationLevel.parse(args.isolation))
        .using(
            PredictionStrategy.parse(args.strategy),
            max_seconds=args.max_seconds,
            **_solver_options(args),
        )
    )
    result = session.run(k=1, validate=False).prediction
    from .obs import observe_analysis_stats

    observe_analysis_stats(result.stats)
    _print_prediction(result, args)
    return 0 if result.status is not Result.UNKNOWN else 2


def _analyze_source(args):
    backend = _store_backend(args)
    if args.trace is not None:
        if backend is not None:
            print(
                "error: --backend selects where an app executes; a trace "
                "is already recorded (sqlite archives load as traces: "
                "--trace runs.sqlite)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        from .sources import as_source

        return as_source(args.trace)  # JSON/JSONL file or sqlite archive
    if args.fuzz is not None:
        return FuzzSource(
            shape_seed=args.fuzz, config=_workload(args), seed=args.seed,
            backend=backend,
        )
    return BenchAppSource(
        args.app, _workload(args), args.seed, backend=backend
    )


def _cmd_analyze(args) -> int:
    """Source-agnostic record→predict→validate in one command."""
    session = (
        Analysis(_analyze_source(args))
        .under(IsolationLevel.parse(args.isolation))
        .using(
            PredictionStrategy.parse(args.strategy),
            max_seconds=args.max_seconds,
            **_solver_options(args),
        )
    )
    run = session.recorded
    meta = " ".join(f"{k}={v}" for k, v in sorted(run.meta.items()))
    print(f"analyzing {session.source.name}: {len(run.history)} committed "
          f"transactions ({meta})")
    batch = session.predict(k=args.k)
    from .obs import observe_analysis_stats

    observe_analysis_stats(batch.stats)
    best = AnalysisResult(run=run, batch=batch).prediction
    if args.k > 1:
        print(f"predictions found: {len(batch)}/{args.k}")
    _print_prediction(best, args)
    if batch.found and not args.no_validate:
        if run.can_validate:
            report = session.validate()
            print(f"validated:  {report.validated}")
            print(
                f"diverged:   {report.diverged} "
                f"({len(report.divergences)} reads)"
            )
        else:
            print(
                "validation unavailable: this source has no replayable "
                "application (analysis-only trace)"
            )
    return 0 if batch.status is not Result.UNKNOWN else 2


def _cmd_check(args) -> int:
    history = load_history(args.trace)
    ser = is_serializable(history)
    print(f"transactions:    {len(history)}")
    print(f"serializable:    {bool(ser)}")
    if ser:
        print(f"  witness order: {' < '.join(ser.commit_order)}")
    else:
        print(f"  pco witness:   {pco_unserializable(history)}")
    print(f"causal:          {is_causal(history)}")
    print(f"read committed:  {is_read_committed(history)}")
    return 0


def _cmd_render(args) -> int:
    history = load_history(args.trace)
    if args.format == "dot":
        print(history_to_dot(history, include_pco=args.pco))
    else:
        print(history_to_text(history, include_pco=args.pco))
    return 0


def _cmd_validate(args) -> int:
    """Validate a predicted trace by replaying the app that produced it."""
    predicted = load_history(args.predicted)
    observed = load_history(args.observed) if args.observed else None
    session = Analysis(
        BenchAppSource(args.app, _workload(args), args.seed)
    ).under(IsolationLevel.parse(args.isolation))
    report = session.validate(prediction=predicted, observed=observed)
    print(f"validated:  {report.validated}")
    print(f"diverged:   {report.diverged} ({len(report.divergences)} reads)")
    print(f"validating execution: {len(report.validating)} transactions")
    if args.verbose:
        print(history_to_text(report.validating, include_pco=True))
    return 0 if report.validated else 1


def _cmd_bench(args) -> int:
    level = IsolationLevel.parse(args.isolation)
    strategy = PredictionStrategy.parse(args.strategy)
    sat = validated = 0
    for seed in range(args.seeds):
        session = (
            Analysis(BenchAppSource(args.app, _workload(args), seed))
            .under(level)
            .using(strategy, max_seconds=args.max_seconds)
        )
        result = session.run(k=1)
        mark = result.batch.status.value
        if result.batch.found:
            sat += 1
            report = result.validation
            if report.validated:
                validated += 1
            mark += " validated" if report.validated else " NOT validated"
            if report.diverged:
                mark += " (diverged)"
        print(f"  seed {seed}: {mark}")
    print(
        f"{args.app} under {level} [{strategy}]: "
        f"{sat}/{args.seeds} predicted, {validated} validated"
    )
    return 0


def _cmd_campaign(args) -> int:
    """Run a parallel sweep of rounds (see repro.campaign)."""
    from .campaign import (
        CampaignExecutor,
        CampaignSpec,
        load_manifest,
        plan_fleet,
        run_worker,
    )

    fleet_mode = args.manifest is not None or args.fleet is not None
    if fleet_mode and args.worker_id is None:
        print(
            "error: --fleet/--manifest run one worker's shard; pass "
            "--worker-id I (see 'isopredict fleet plan' / 'fleet merge' "
            "for the full recipe)",
            file=sys.stderr,
        )
        return 2
    if args.worker_id is not None and not fleet_mode:
        print(
            "error: --worker-id needs --fleet K or --manifest PATH",
            file=sys.stderr,
        )
        return 2
    if args.manifest is not None and args.spec:
        print(
            "error: --manifest already carries the campaign spec; drop "
            "--spec",
            file=sys.stderr,
        )
        return 2
    try:
        manifest = None
        if args.manifest is not None:
            manifest = load_manifest(args.manifest)
            spec = manifest.spec
        elif args.spec:
            spec = CampaignSpec.from_file(args.spec)
        else:
            spec = CampaignSpec(
                name=args.name,
                apps=args.apps,
                isolation_levels=args.isolation,
                strategies=args.strategies,
                workloads=args.workloads,
                seeds=args.seeds,
                modes=args.modes,
                source=args.source,
                ops_scale=args.ops_scale,
                validate=not args.no_validate,
                max_seconds=args.max_seconds,
                max_predictions=args.k,
                max_rounds=args.max_rounds,
                solver=args.solver,
                backend=args.backend,
            )
        if fleet_mode and manifest is None:
            manifest = plan_fleet(spec, args.fleet, root=".")
        executor = None
        if not fleet_mode:
            executor = CampaignExecutor(
                spec,
                jobs=args.jobs,
                out=args.out or "campaign.jsonl",
                resume=args.resume,
                log=None if args.quiet else print,
                max_retries=args.max_retries,
                retry_backoff=args.retry_backoff,
                heartbeat_seconds=args.heartbeat,
                fault_plan=args.fault_plan,
            )
    except (ValueError, OSError) as exc:
        print(f"error: invalid campaign spec: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # tomllib/json parse errors
        source = args.spec or args.manifest or "flags"
        print(f"error: could not parse {source}: {exc}", file=sys.stderr)
        return 2
    # probe the backend now: a dimacs spec with no solver installed must
    # fail here with one clean message (BackendUnavailable -> exit 3 in
    # main), not as one error row per round after the whole sweep ran
    from .smt import make_backend

    make_backend(spec.solver).close()
    if fleet_mode:
        report = run_worker(
            manifest,
            args.worker_id,
            jobs=args.jobs,
            resume=args.resume,
            log=None if args.quiet else print,
            out=args.out,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            heartbeat_seconds=args.heartbeat,
            fault_plan=args.fault_plan,
        )
    else:
        report = executor.run()
    print(report.summary())
    if args.report:
        Path(args.report).write_text(report.canonical_json())
        print(f"canonical report written to {args.report}")
    if args.summary:
        Path(args.summary).write_text(report.summary() + "\n")
        print(f"summary written to {args.summary}")
    if report.cancelled:
        return 130
    return 1 if report.errors else 0


def _fleet_robustness_env(args) -> int:
    """Export retry knobs / install the chaos plan for in-process fleet
    seams (``fleet.manifest``, ``fleet.merge``) — the same prologue
    ``watch`` uses. Returns a non-zero exit code on a bad plan."""
    import os

    from .faults import MAX_RETRIES_ENV, RETRY_BACKOFF_ENV, install_plan

    if args.max_retries is not None:
        os.environ[MAX_RETRIES_ENV] = str(args.max_retries)
    if args.retry_backoff is not None:
        os.environ[RETRY_BACKOFF_ENV] = repr(args.retry_backoff)
    if args.fault_plan:
        try:
            install_plan(args.fault_plan, env=True)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
    return 0


def _cmd_fleet_plan(args) -> int:
    """Shard a campaign spec into a written fleet manifest."""
    from .campaign import CampaignSpec, plan_fleet

    out = Path(args.out)
    try:
        spec = CampaignSpec.from_file(args.spec)
        manifest = plan_fleet(spec, args.fleet, root=out.parent)
    except (ValueError, OSError) as exc:
        print(f"error: invalid campaign spec: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # tomllib/json parse errors
        print(f"error: could not parse {args.spec}: {exc}", file=sys.stderr)
        return 2
    manifest.write(out)
    total = sum(len(w.round_ids) for w in manifest.workers)
    print(
        f"fleet manifest: {out} ({manifest.fleet} workers, "
        f"{total} rounds)"
    )
    for entry in manifest.workers:
        print(
            f"  worker {entry.worker_id}: {len(entry.round_ids)} rounds "
            f"-> {entry.results}"
        )
    print(
        "run each shard with: isopredict campaign "
        f"--manifest {out} --worker-id I"
    )
    return 0


def _cmd_fleet_merge(args) -> int:
    """Merge worker streams into one campaign report (optionally heal)."""
    import json

    from .campaign import CampaignSpec, load_manifest, merge_fleet

    code = _fleet_robustness_env(args)
    if code:
        return code
    try:
        if args.manifest is not None:
            if args.streams:
                print(
                    "error: --manifest derives the worker streams; drop "
                    "the positional stream arguments",
                    file=sys.stderr,
                )
                return 2
            manifest = load_manifest(args.manifest)
            spec = manifest.spec
            streams = [
                manifest.results_path(w.worker_id)
                for w in manifest.workers
            ]
        else:
            if not args.spec or not args.streams:
                print(
                    "error: fleet merge needs --manifest PATH, or --spec "
                    "FILE plus the worker stream paths",
                    file=sys.stderr,
                )
                return 2
            spec = CampaignSpec.from_file(args.spec)
            streams = list(args.streams)
            manifest = None
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # tomllib/json parse errors
        source = args.manifest or args.spec
        print(f"error: could not parse {source}: {exc}", file=sys.stderr)
        return 2
    merge = merge_fleet(
        spec,
        streams,
        out=args.out,
        heal=args.resume,
        jobs=args.jobs,
        log=None if args.quiet else print,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        fault_plan=args.fault_plan,
    )
    print(merge.report.summary())
    print("merge: " + json.dumps(merge.summary(), sort_keys=True))
    if args.report:
        Path(args.report).write_text(merge.report.canonical_json())
        print(f"canonical report written to {args.report}")
    if args.archive:
        code = _merge_worker_archives(args, manifest, spec)
        if code:
            return code
    if not merge.complete:
        print(
            "incomplete: some rounds have no successful result "
            "(re-run with --resume to heal locally)",
            file=sys.stderr,
        )
        return 1
    return 0


def _merge_worker_archives(args, manifest, spec) -> int:
    """Compact the per-worker SQLite archives into ``args.archive``."""
    from .store.backends import (
        SqliteBackend,
        compact_archive,
        make_store_backend,
    )

    if manifest is None:
        print(
            "error: --archive needs --manifest (the worker workdirs "
            "locate the per-worker archives)",
            file=sys.stderr,
        )
        return 2
    backend = make_store_backend(spec.backend)
    if not isinstance(backend, SqliteBackend):
        print(
            f"error: --archive: spec backend is {spec.backend!r}, not a "
            "sqlite archive",
            file=sys.stderr,
        )
        return 2
    sources = []
    for entry in manifest.workers:
        candidate = manifest.workdir(entry.worker_id) / backend.path
        if candidate.exists() and candidate.resolve() not in [
            s.resolve() for s in sources
        ]:
            sources.append(candidate)
    if not sources:
        print("no worker archives found; nothing to compact")
        return 0
    stats = compact_archive(args.archive, sources)
    print(stats.summary())
    print(f"merged archive: {args.archive}")
    return 0


def _cmd_archive_compact(args) -> int:
    """Dedup/merge/VACUUM SQLite execution archives."""
    from .store.backends import compact_archive

    try:
        stats = compact_archive(
            args.dest, args.sources, vacuum=not args.no_vacuum
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(stats.summary())
    print(
        f"archive: {args.dest} ({stats.rows_out} executions, "
        f"{stats.bytes_after} bytes)"
    )
    return 0


def _cmd_fuzz(args) -> int:
    """Run the coverage-guided anomaly miner (see repro.fuzz)."""
    import json

    from .fuzz import FuzzConfig, fuzz
    from .store.backends import store_backend_spec

    try:
        config = FuzzConfig(
            seed=args.seed,
            iterations=args.iterations,
            minutes=args.minutes,
            isolation=args.isolation,
            backend=store_backend_spec(args.backend),
            k=args.k,
            guided=not args.blind,
            max_conflicts=args.max_conflicts,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = Path(args.out)
    report = fuzz(
        config,
        jobs=args.jobs,
        corpus_path=out / "corpus.jsonl",
        finds_dir=out / "finds",
        resume=args.resume,
        log=None if args.quiet else print,
    )
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    print(f"corpus: {out / 'corpus.jsonl'} ({len(report.finds)} finds)")
    return 0 if report.finds else 1


def _watch_source(args):
    """The (possibly tailing) history source behind ``watch``."""
    from .serve import SqliteWatchSource, TailingJsonlSource

    if args.trace is not None:
        path = Path(args.trace)
        tail = dict(
            poll_seconds=args.poll,
            follow=args.follow,
            idle_timeout=args.idle_timeout,
            max_runs=args.runs,
        )
        if path.suffix.lower() in (".sqlite", ".sqlite3", ".db"):
            return SqliteWatchSource(path, from_start=not args.new_only,
                                     **tail)
        return TailingJsonlSource(path, from_start=not args.new_only, **tail)
    backend = None
    if args.archive:
        from .store.backends import SqliteBackend

        backend = SqliteBackend(args.archive, max_runs=args.keep)
    return FuzzSource(
        shape_seed=args.fuzz,
        config=_workload(args),
        seed=args.seed,
        count=args.runs,
        backend=backend,
    )


def _cmd_watch(args) -> int:
    """Continuous windowed prediction over a live run stream."""
    import json
    import os

    from .faults import MAX_RETRIES_ENV, RETRY_BACKOFF_ENV, install_plan
    from .serve import StreamingAnalysis

    # the watch loop is in-process: export the retry policy for the
    # store/stream seams and install any chaos plan before the engine
    # touches the source
    if args.max_retries is not None:
        os.environ[MAX_RETRIES_ENV] = str(args.max_retries)
    if args.retry_backoff is not None:
        os.environ[RETRY_BACKOFF_ENV] = repr(args.retry_backoff)
    if args.fault_plan:
        try:
            install_plan(args.fault_plan, env=True)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
    if args.trace is not None and args.archive:
        print(
            "error: --archive persists runs recorded by --fuzz; a tailed "
            "--trace recording is already durable",
            file=sys.stderr,
        )
        return 2
    if args.trace is None and (args.follow or args.new_only):
        print(
            "error: --follow/--new-only tail a --trace recording; a "
            "--fuzz stream is generated, not tailed",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint and args.trace is None:
        print(
            "error: --checkpoint resumes a tailed --trace source; a "
            "--fuzz stream restarts deterministically from its seed",
            file=sys.stderr,
        )
        return 2
    levels = [s.strip() for s in args.isolation.split(",") if s.strip()]
    metrics_server = None
    if args.metrics_addr:
        from .obs import MetricsServer

        try:
            metrics_server = MetricsServer(args.metrics_addr)
            metrics_server.start()
        except (OSError, ValueError) as exc:
            print(f"error: bad --metrics-addr: {exc}", file=sys.stderr)
            return 2
        if not args.quiet:
            print(f"metrics: http://{metrics_server.address}/metrics")
    out_fh = open(args.out, "a") if args.out else None

    def on_finding(finding):
        if out_fh is not None:
            out_fh.write(json.dumps(finding.to_json(), sort_keys=True) + "\n")
            out_fh.flush()
        if not args.quiet:
            print(
                f"  FOUND {finding.key} "
                f"(run {finding.run_index}, window "
                f"[{finding.window_start}:{finding.window_stop}])"
            )

    engine = StreamingAnalysis(
        _watch_source(args),
        window=args.window,
        stride=args.stride,
        isolation=levels,
        strategy=args.strategy,
        k=args.k,
        max_seconds=args.max_seconds,
        max_runs=args.runs,
        max_windows=args.windows,
        max_findings=args.max_findings,
        on_finding=on_finding,
        log=None if args.quiet else print,
        checkpoint=args.checkpoint,
        **_solver_options(args),
    )
    interrupted = False
    try:
        report = engine.run()
    except KeyboardInterrupt:
        interrupted = True
        report = engine.report()
        print("\ninterrupted — reporting the stream so far", file=sys.stderr)
    finally:
        if out_fh is not None:
            out_fh.close()
        if metrics_server is not None:
            metrics_server.stop()
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    if args.out:
        print(f"findings: {args.out} ({len(report.findings)} rows)")
    if interrupted:
        return 130
    return 0 if report.findings else 1


def _cmd_corpus_promote(args) -> int:
    """Promote novel fuzz finds into the regression corpus."""
    from .fuzz import promote_entries

    source = Path(args.source)
    if source.is_dir():
        source = source / "corpus.jsonl"
    if not source.exists():
        print(f"error: no corpus at {source}", file=sys.stderr)
        return 2
    report = promote_entries(
        source,
        args.dest,
        verify=not args.no_verify,
        log=None if args.quiet else print,
    )
    summary = report.summary()
    print(
        f"promoted {len(summary['promoted'])} entr(y/ies) to {args.dest} "
        f"({len(summary['known'])} already known, "
        f"{len(summary['failed'])} failed verification)"
    )
    return 1 if report.failed else 0


def _cmd_obs_report(args) -> int:
    """Summarize a telemetry trace: stages, rollups, critical path."""
    import json

    from .obs import build_report, format_report, load_events

    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = build_report(events)
    try:
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_report(report, top=args.top))
    except BrokenPipeError:  # report | head is a normal way to skim
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_obs_validate(args) -> int:
    """Check a telemetry trace against the event schema."""
    from .obs import load_events, validate_events

    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = validate_events(events)
    for problem in problems:
        print(f"INVALID: {problem}")
    if problems:
        return 1
    spans = sum(1 for e in events if e.get("event") == "span")
    print(f"ok: {len(events)} events, {spans} spans")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="isopredict",
        description=(
            "Dynamic predictive analysis for unserializable behaviours "
            "under weak isolation (PLDI 2024 reproduction)"
        ),
        epilog=(
            "Start with README.md for a guided tour; 'campaign' runs the "
            "paper-scale sweeps (Tables 3-7) in parallel."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload(p):
        p.add_argument("--workload", choices=("small", "large"),
                       default="small")
        p.add_argument("--ops-scale", type=int, default=1, dest="ops_scale")

    def add_store_backend(p):
        p.add_argument(
            "--backend", default="inmemory", metavar="SPEC",
            help="store backend: inmemory (default), sharded:N[:local] "
                 "(hash-routed shards; ':local' judges read legality per "
                 "shard), or sqlite:PATH (persist every execution to a "
                 "reopenable SQLite archive)",
        )

    def add_solver(p):
        p.add_argument(
            "--solver", default="inprocess", metavar="SPEC",
            help="solver backend: inprocess (default), dimacs[:binary] "
                 "(external DIMACS solver subprocess), or portfolio[:N] "
                 "(N diversified workers racing in processes)",
        )
        p.add_argument(
            "--portfolio", type=int, default=None, metavar="N",
            help="shorthand for --solver portfolio:N",
        )
        p.add_argument(
            "--deterministic", action="store_true",
            help="portfolio only: lowest-index definite verdict wins, "
                 "making the winning model scheduling-independent",
        )
        p.add_argument(
            "--budget", default=None, metavar="SPEC",
            help="solver search budget: '30s' (wall clock), '20000c' "
                 "(conflicts), or '30s,20000c'; the seconds component "
                 "overrides --max-seconds",
        )

    def add_robustness(p):
        p.add_argument(
            "--max-retries", type=int, default=None, metavar="N",
            help="retry budget for transient failures (locked archive, "
                 "crashed worker, solver timeout); default 2",
        )
        p.add_argument(
            "--retry-backoff", type=float, default=None, metavar="SECONDS",
            help="base backoff between retries (exponential with "
                 "deterministic jitter); default 0.05",
        )
        p.add_argument(
            "--fault-plan", default=None, metavar="SPEC",
            help="deterministic fault injection for chaos testing: "
                 "';'-separated point:kind[@after][*times] specs, e.g. "
                 "'store.sqlite.persist:busy*2;campaign.round:crash' "
                 "(see docs/robustness.md)",
        )

    def add_telemetry(p):
        p.add_argument(
            "--telemetry", default=None, metavar="PATH",
            help="write a structured trace of this invocation to PATH "
                 "as schema-versioned JSONL spans/metrics; worker "
                 "processes stitch into the same trace (see "
                 "docs/observability.md); inspect with 'isopredict obs "
                 "report PATH'",
        )
        p.add_argument(
            "--telemetry-clock", default=None, metavar="SPEC",
            help="telemetry clock override: 'fixed[:T]' freezes every "
                 "timestamp so same-seed runs emit byte-identical "
                 "traces (determinism harnesses; durations become 0)",
        )

    p_analyze = sub.add_parser(
        "analyze",
        help="record/load a history from any source, predict, validate",
        description=(
            "The source-agnostic pipeline: pick exactly one history "
            "source (--app records a benchmark app in process, --trace "
            "loads an externally recorded JSON/JSONL trace, --fuzz "
            "records a generated random app), then predict and — when "
            "the source can replay — validate."
        ),
    )
    source_group = p_analyze.add_mutually_exclusive_group(required=True)
    source_group.add_argument(
        "--app", choices=sorted(_APPS), default=None,
        help="record this benchmark app",
    )
    source_group.add_argument(
        "--trace", default=None,
        help="analyze a saved trace file (no app class in the loop)",
    )
    source_group.add_argument(
        "--fuzz", type=int, default=None, metavar="SHAPE_SEED",
        help="record a generated random app with this shape seed",
    )
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.add_argument("--isolation", default="causal")
    p_analyze.add_argument("--strategy", default="approx-relaxed")
    p_analyze.add_argument(
        "--k", type=int, default=1,
        help="distinct predictions to enumerate",
    )
    p_analyze.add_argument("--max-seconds", type=float, default=120.0)
    p_analyze.add_argument(
        "--no-validate", action="store_true",
        help="skip replay validation of predictions",
    )
    p_analyze.add_argument(
        "--out", default=None,
        help="write the best predicted history to this file",
    )
    p_analyze.add_argument(
        "--minimize", action="store_true",
        help="shrink the reported prediction to its witness kernel",
    )
    p_analyze.add_argument(
        "--profile", action="store_true",
        help="print per-stage timings (encode/compile/solve/decode) "
             "and solver counters",
    )
    add_workload(p_analyze)
    add_solver(p_analyze)
    add_store_backend(p_analyze)
    add_telemetry(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_record = sub.add_parser("record", help="record an observed execution")
    p_record.add_argument("--app", choices=sorted(_APPS), required=True)
    p_record.add_argument("--seed", type=int, default=0)
    p_record.add_argument("--out", default="trace.json")
    add_workload(p_record)
    add_store_backend(p_record)
    p_record.set_defaults(func=_cmd_record)

    p_predict = sub.add_parser("predict", help="predict an unserializable run")
    p_predict.add_argument("trace")
    p_predict.add_argument("--isolation", default="causal")
    p_predict.add_argument("--strategy", default="approx-relaxed")
    p_predict.add_argument("--max-seconds", type=float, default=None)
    p_predict.add_argument("--out", default=None)
    p_predict.add_argument(
        "--minimize",
        action="store_true",
        help="shrink the reported prediction to its witness kernel",
    )
    p_predict.add_argument(
        "--profile", action="store_true",
        help="print per-stage timings and solver counters",
    )
    add_solver(p_predict)
    add_telemetry(p_predict)
    p_predict.set_defaults(func=_cmd_predict)

    p_check = sub.add_parser("check", help="check a trace's isolation levels")
    p_check.add_argument("trace")
    p_check.set_defaults(func=_cmd_check)

    p_render = sub.add_parser("render", help="render a trace")
    p_render.add_argument("trace")
    p_render.add_argument("--format", choices=("text", "dot"), default="text")
    p_render.add_argument("--pco", action="store_true")
    p_render.set_defaults(func=_cmd_render)

    p_validate = sub.add_parser(
        "validate", help="replay an app against a predicted trace"
    )
    p_validate.add_argument("predicted")
    p_validate.add_argument("--app", choices=sorted(_APPS), required=True)
    p_validate.add_argument("--seed", type=int, default=0)
    p_validate.add_argument("--isolation", default="causal")
    p_validate.add_argument("--observed", default=None)
    p_validate.add_argument("--verbose", action="store_true")
    add_workload(p_validate)
    p_validate.set_defaults(func=_cmd_validate)

    p_bench = sub.add_parser("bench", help="predict+validate across seeds")
    p_bench.add_argument("--app", choices=sorted(_APPS), required=True)
    p_bench.add_argument("--isolation", default="causal")
    p_bench.add_argument("--strategy", default="approx-relaxed")
    p_bench.add_argument("--seeds", type=int, default=10)
    p_bench.add_argument("--max-seconds", type=float, default=120.0)
    add_workload(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_campaign = sub.add_parser(
        "campaign",
        help="run a parallel sweep of record/predict/validate rounds",
        description=(
            "Plan and execute a campaign: a sweep of rounds over apps x "
            "isolation levels x strategies x seeds, fanned out over worker "
            "processes, streaming per-round results to JSONL and printing "
            "a Tables 4-7 style summary. A spec file (TOML or JSON) "
            "replaces the sweep flags; see README.md for the format."
        ),
    )
    p_campaign.add_argument(
        "--spec", default=None,
        help="campaign spec file (.toml or .json); overrides sweep flags",
    )
    p_campaign.add_argument("--name", default="campaign")
    p_campaign.add_argument(
        "--apps", default="smallbank",
        help="comma-separated app names, or 'all'",
    )
    p_campaign.add_argument(
        "--isolation", default="causal",
        help="comma-separated isolation levels (causal, rc, ra)",
    )
    p_campaign.add_argument(
        "--strategies", default="approx-relaxed",
        help="comma-separated prediction strategies",
    )
    p_campaign.add_argument(
        "--workloads", default="small",
        help="comma-separated workloads (tiny, small, large)",
    )
    p_campaign.add_argument(
        "--seeds", default="3",
        help="seed count (N -> seeds 0..N-1) or explicit list '0,3,7'",
    )
    p_campaign.add_argument(
        "--modes", default="predict",
        help="comma-separated round modes (predict, monkeydb, interleaved)",
    )
    p_campaign.add_argument(
        "--source", default="bench",
        help="history source: bench, fuzz, or trace:<path>",
    )
    p_campaign.add_argument("--ops-scale", type=int, default=1,
                            dest="ops_scale")
    p_campaign.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = run inline)",
    )
    p_campaign.add_argument(
        "--out", default=None,
        help="streamed per-round results (JSONL; default campaign.jsonl, "
             "or the manifest's worker stream in fleet mode)",
    )
    p_campaign.add_argument(
        "--resume", action="store_true",
        help="skip rounds already completed in --out",
    )
    p_campaign.add_argument(
        "--fleet", type=int, default=None, metavar="K",
        help="fleet mode: run only this host's shard of a deterministic "
             "K-way round partition (requires --worker-id; merge the "
             "worker streams with 'isopredict fleet merge')",
    )
    p_campaign.add_argument(
        "--worker-id", type=int, default=None, dest="worker_id",
        metavar="I",
        help="which shard to run, 0-based (with --fleet or --manifest)",
    )
    p_campaign.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="fleet manifest written by 'isopredict fleet plan'; carries "
             "the spec and per-worker layout (implies fleet mode)",
    )
    p_campaign.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the canonical timing-free report JSON to PATH — "
             "byte-identical across equivalent runs (jobs, fleet size)",
    )
    p_campaign.add_argument(
        "--no-validate", action="store_true",
        help="skip replay validation of predictions",
    )
    p_campaign.add_argument(
        "--max-seconds", type=float, default=120.0,
        help="per-round solver budget",
    )
    p_campaign.add_argument(
        "--k", type=int, default=1, dest="k",
        help="distinct predictions to enumerate per history",
    )
    p_campaign.add_argument(
        "--max-rounds", type=int, default=None,
        help="round budget: stop expanding the sweep after N rounds",
    )
    p_campaign.add_argument(
        "--solver", default="inprocess", metavar="SPEC",
        help="solver backend per round: inprocess, dimacs[:binary], or "
             "portfolio[:N[:deterministic]]",
    )
    p_campaign.add_argument(
        "--backend", default="inmemory", metavar="SPEC",
        help="store backend per round: inmemory, sharded:N[:local], or "
             "sqlite:PATH (workers share one archive file)",
    )
    p_campaign.add_argument(
        "--summary", default=None,
        help="also write the summary tables to this file",
    )
    add_robustness(p_campaign)
    p_campaign.add_argument(
        "--heartbeat", type=float, default=300.0, metavar="SECONDS",
        help="declare the worker pool stalled when no round result "
             "arrives for this long; missing rounds are re-submitted, "
             "then quarantined as errored rows past the retry budget",
    )
    p_campaign.add_argument("--quiet", action="store_true",
                            help="suppress per-round progress lines")
    add_telemetry(p_campaign)
    p_campaign.set_defaults(func=_cmd_campaign)

    p_fleet = sub.add_parser(
        "fleet",
        help="shard a campaign across workers and merge their streams",
        description=(
            "Fleet-scale campaigns: 'plan' shards a spec into a written "
            "manifest (round-robin over the deterministic expansion "
            "order), each worker runs its shard via 'isopredict campaign "
            "--manifest M --worker-id I' — separate processes, workdirs, "
            "or hosts — and 'merge' folds the worker streams back into "
            "one report byte-identical to a single-executor run. "
            "See docs/fleet.md."
        ),
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fleet_plan = fleet_sub.add_parser(
        "plan",
        help="shard a campaign spec into a written fleet manifest",
        description=(
            "Partition the spec's rounds into K deterministic shards and "
            "write a relocatable manifest (worker-<i>/ workdirs and "
            "streams relative to it). The manifest records each shard's "
            "round ids, so a spec edited after planning fails loud as "
            "stale instead of half-running the old partition."
        ),
    )
    p_fleet_plan.add_argument(
        "--spec", required=True,
        help="campaign spec file (.toml or .json)",
    )
    p_fleet_plan.add_argument(
        "--fleet", type=int, required=True, metavar="K",
        help="number of worker shards",
    )
    p_fleet_plan.add_argument(
        "--out", default="fleet/manifest.json",
        help="manifest path; worker workdirs are created next to it",
    )
    p_fleet_plan.set_defaults(func=_cmd_fleet_plan)
    p_fleet_merge = fleet_sub.add_parser(
        "merge",
        help="merge worker streams into one report; optionally heal gaps",
        description=(
            "Read every worker's JSONL stream (a missing stream is an "
            "empty one — that worker's rounds become the gap), keep one "
            "result per round id, write the merged stream, and build the "
            "merged report. --resume re-runs only the missing/errored "
            "rounds through a local executor, healing workers that died "
            "mid-shard on other hosts. Exit 0 iff every round has a "
            "successful result."
        ),
    )
    p_fleet_merge.add_argument(
        "streams", nargs="*",
        help="worker JSONL streams (with --spec; --manifest derives them)",
    )
    p_fleet_merge.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="fleet manifest written by 'fleet plan'",
    )
    p_fleet_merge.add_argument(
        "--spec", default=None,
        help="campaign spec file (when merging explicit stream paths)",
    )
    p_fleet_merge.add_argument(
        "--out", default="merged.jsonl",
        help="merged JSONL stream (also the heal/resume stream)",
    )
    p_fleet_merge.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the canonical timing-free report JSON to PATH",
    )
    p_fleet_merge.add_argument(
        "--resume", action="store_true",
        help="heal the gap: re-run rounds with no successful result "
             "through a local executor resuming over --out",
    )
    p_fleet_merge.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the heal step",
    )
    p_fleet_merge.add_argument(
        "--archive", default=None, metavar="PATH",
        help="also compact the per-worker sqlite archives into this one "
             "reopenable archive (--manifest only)",
    )
    p_fleet_merge.add_argument("--quiet", action="store_true",
                               help="suppress heal progress lines")
    add_robustness(p_fleet_merge)
    add_telemetry(p_fleet_merge)
    p_fleet_merge.set_defaults(func=_cmd_fleet_merge)

    p_archive = sub.add_parser(
        "archive", help="maintain SQLite execution archives"
    )
    archive_sub = p_archive.add_subparsers(dest="archive_command",
                                           required=True)
    p_archive_compact = archive_sub.add_parser(
        "compact",
        help="dedup identical executions, fold archives in, VACUUM",
        description=(
            "Dedup DEST's executions by content hash (earliest row "
            "wins, so surviving ids and concurrent tail cursors stay "
            "valid), fold any SOURCES archives in the same pass — a "
            "missing DEST is created, so merging N worker archives into "
            "a fresh file is one step — then VACUUM to return the freed "
            "pages. Sources are read-only. Idempotent."
        ),
    )
    p_archive_compact.add_argument("dest", help="archive to compact into")
    p_archive_compact.add_argument(
        "sources", nargs="*",
        help="additional archives to fold into dest (read-only)",
    )
    p_archive_compact.add_argument(
        "--no-vacuum", action="store_true", dest="no_vacuum",
        help="skip the VACUUM pass (keep the file layout as-is)",
    )
    p_archive_compact.set_defaults(func=_cmd_archive_compact)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="mine anomalies with coverage-guided scenario fuzzing",
        description=(
            "Feedback-driven fuzzing over random-app program plans: "
            "mutate scenarios, fingerprint each analysis by anomaly "
            "shape, and keep every novel find as a minimized reproducer "
            "in a JSONL corpus. Fully deterministic per --seed with "
            "--iterations; a --minutes budget is prefix-deterministic. "
            "See docs/fuzzing.md."
        ),
    )
    budget_group = p_fuzz.add_mutually_exclusive_group()
    budget_group.add_argument(
        "--minutes", type=float, default=None,
        help="wall-clock mining budget (prefix-deterministic)",
    )
    budget_group.add_argument(
        "--iterations", type=int, default=None,
        help="per-worker iteration budget (fully reproducible; "
             "default 40 when --minutes is not given)",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign scheduler seed")
    p_fuzz.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (finds merge deterministically)",
    )
    p_fuzz.add_argument("--isolation", default="causal",
                        help="base isolation level (perturbed occasionally)")
    p_fuzz.add_argument(
        "--k", type=int, default=2,
        help="distinct predictions to enumerate per scenario",
    )
    p_fuzz.add_argument(
        "--max-conflicts", type=int, default=20_000, dest="max_conflicts",
        help="per-scenario solver budget in conflicts (deterministic, "
             "unlike wall-clock budgets)",
    )
    p_fuzz.add_argument(
        "--out", default="fuzz-out",
        help="output directory (corpus.jsonl + finds/*.json)",
    )
    p_fuzz.add_argument(
        "--resume", action="store_true",
        help="reload --out corpus first: known shapes stop being novel "
             "and checked-in plans rejoin the population",
    )
    p_fuzz.add_argument(
        "--blind", action="store_true",
        help="disable coverage guidance (fresh random plans only; the "
             "baseline the comparison tests measure against)",
    )
    p_fuzz.add_argument("--quiet", action="store_true",
                        help="suppress per-find progress lines")
    add_store_backend(p_fuzz)
    add_telemetry(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_watch = sub.add_parser(
        "watch",
        help="stream runs through windowed incremental prediction",
        description=(
            "The streaming service mode: consume a live run stream — a "
            "fuzz scenario stream, or a tailed JSONL/SQLite recording "
            "another process appends to — segment committed transactions "
            "into overlapping windows, analyze each window incrementally, "
            "and report each anomaly exactly once across overlaps. "
            "Anomalies wider than every window are counted as coverage "
            "gaps, never dropped silently; see docs/streaming.md."
        ),
    )
    watch_source = p_watch.add_mutually_exclusive_group(required=True)
    watch_source.add_argument(
        "--fuzz", type=int, default=None, metavar="SHAPE_SEED",
        help="stream generated scenarios starting at this shape seed",
    )
    watch_source.add_argument(
        "--trace", default=None, metavar="PATH",
        help="tail a recording: a JSONL trace file, or a SQLite "
             "execution archive (*.sqlite/*.sqlite3/*.db)",
    )
    p_watch.add_argument("--seed", type=int, default=0,
                         help="recording seed for --fuzz scenarios")
    p_watch.add_argument(
        "--window", type=int, default=16,
        help="window size in committed transactions",
    )
    p_watch.add_argument(
        "--stride", type=int, default=None,
        help="commits between window starts (default: half the window, "
             "rounded up)",
    )
    p_watch.add_argument("--isolation", default="causal",
                         help="comma-separated isolation levels")
    p_watch.add_argument("--strategy", default="approx-relaxed")
    p_watch.add_argument(
        "--k", type=int, default=2,
        help="distinct predictions to enumerate per window",
    )
    p_watch.add_argument("--max-seconds", type=float, default=None,
                         help="per-window solver budget")
    p_watch.add_argument(
        "--runs", type=int, default=None,
        help="stop after this many runs (unbounded by default)",
    )
    p_watch.add_argument(
        "--windows", type=int, default=None,
        help="stop after this many analyzed windows",
    )
    p_watch.add_argument(
        "--max-findings", type=int, default=None, dest="max_findings",
        help="stop after this many distinct findings",
    )
    p_watch.add_argument(
        "--follow", action="store_true",
        help="--trace only: keep polling for new data after draining "
             "the backlog (tail -f semantics; default drains and exits)",
    )
    p_watch.add_argument(
        "--poll", type=float, default=0.2,
        help="--trace polling interval in seconds",
    )
    p_watch.add_argument(
        "--idle-timeout", type=float, default=None, dest="idle_timeout",
        help="--follow only: exit after this many seconds with no new "
             "data",
    )
    p_watch.add_argument(
        "--new-only", action="store_true", dest="new_only",
        help="--trace only: skip the existing backlog, watch only runs "
             "that arrive after startup",
    )
    p_watch.add_argument(
        "--archive", default=None, metavar="PATH",
        help="--fuzz only: persist every recorded run to this SQLite "
             "archive (the durable ingest spine; bounded by --keep)",
    )
    p_watch.add_argument(
        "--keep", type=int, default=256,
        help="retention bound for --archive: keep only the newest N "
             "executions (default 256)",
    )
    p_watch.add_argument(
        "--out", default=None,
        help="append each finding as a JSON line to this file",
    )
    p_watch.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="persist the watch cursor + dedup state to this file after "
             "every window/run; restarting with the same path resumes "
             "exactly-once after a crash (see docs/robustness.md)",
    )
    p_watch.add_argument(
        "--metrics-addr", default=None, metavar="HOST:PORT",
        dest="metrics_addr",
        help="serve live Prometheus-text metrics on this address for "
             "the duration of the watch (GET /metrics; ':PORT' binds "
             "127.0.0.1, port 0 picks a free port)",
    )
    add_robustness(p_watch)
    p_watch.add_argument("--quiet", action="store_true",
                         help="suppress per-finding progress lines")
    add_workload(p_watch)
    add_solver(p_watch)
    add_telemetry(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_corpus = sub.add_parser(
        "corpus", help="maintain the checked-in regression corpus"
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command",
                                         required=True)
    p_promote = corpus_sub.add_parser(
        "promote",
        help="promote novel fuzz finds into the regression corpus",
        description=(
            "Read a fuzz run's corpus (a corpus.jsonl file or the "
            "--out directory that contains one), drop entries whose "
            "anomaly shape the destination corpus already covers, "
            "re-verify the rest by replaying their recorded "
            "configuration, and append the survivors. Idempotent: "
            "promoting the same campaign twice adds nothing."
        ),
    )
    p_promote.add_argument(
        "source",
        help="fuzz corpus to promote from (corpus.jsonl or fuzz out dir)",
    )
    p_promote.add_argument(
        "--dest", default="tests/corpus/corpus.jsonl",
        help="regression corpus to promote into",
    )
    p_promote.add_argument(
        "--no-verify", action="store_true",
        help="skip replay verification of candidates (not recommended)",
    )
    p_promote.add_argument("--quiet", action="store_true")
    p_promote.set_defaults(func=_cmd_corpus_promote)

    p_obs = sub.add_parser(
        "obs", help="inspect telemetry traces written by --telemetry"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_report = obs_sub.add_parser(
        "report",
        help="per-stage and critical-path breakdown of a trace",
        description=(
            "Aggregate a telemetry JSONL (written by any command's "
            "--telemetry PATH) into --profile-style stage totals, a "
            "per-span-name rollup, and the trace's critical path — "
            "post-hoc and across every process that joined the trace."
        ),
    )
    p_obs_report.add_argument("trace", help="telemetry JSONL path")
    p_obs_report.add_argument(
        "--json", action="store_true",
        help="emit the raw report document instead of tables",
    )
    p_obs_report.add_argument(
        "--top", type=int, default=12,
        help="rows in the top-spans table (default 12)",
    )
    p_obs_report.set_defaults(func=_cmd_obs_report)
    p_obs_validate = obs_sub.add_parser(
        "validate",
        help="check a trace against the telemetry event schema",
        description=(
            "The CI schema gate: meta header first, known schema "
            "version, required fields per event kind, spans closed "
            "exactly once, resolvable parents, and same-process "
            "nesting containment."
        ),
    )
    p_obs_validate.add_argument("trace", help="telemetry JSONL path")
    p_obs_validate.set_defaults(func=_cmd_obs_validate)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from .obs import telemetry_session

    try:
        with telemetry_session(
            getattr(args, "telemetry", None),
            command=args.command,
            clock=getattr(args, "telemetry_clock", None),
        ):
            return args.func(args)
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
