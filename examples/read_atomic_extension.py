"""The read-atomic extension (paper §8) on a fractured-read scenario.

A checkout service writes an order and its invoice *atomically* in one
transaction; a shipping service reads both. Under read committed the
shipper can observe the order without its invoice — a fractured read.
Read atomic forbids exactly that while still being weaker than causal.

This example records a serializable execution, then shows IsoPredict
finding a fractured-read prediction under rc that is *not* predictable
under ra — the two levels differ exactly on this anomaly class.

Run:  python examples/read_atomic_extension.py
"""
from repro.history import HistoryBuilder
from repro.isolation import (
    IsolationLevel,
    is_read_atomic,
    is_read_committed,
    is_serializable,
)
from repro.predict import IsoPredict, PredictionStrategy
from repro.smt import Result
from repro.viz import history_to_text


def observed_history():
    """Checkout writes order+invoice; shipping reads invoice then order."""
    b = HistoryBuilder(initial={"order:42": None, "invoice:42": None})
    checkout = b.txn("t1", "checkout")
    checkout.write("order:42", {"item": "book"})
    checkout.write("invoice:42", {"total": 30})
    shipping = b.txn("t2", "shipping")
    shipping.read("invoice:42", writer="t1", value={"total": 30})
    shipping.read("order:42", writer="t1", value={"item": "book"})
    return b.build()


def main():
    observed = observed_history()
    print("=== Observed execution ===")
    print(history_to_text(observed))
    assert is_serializable(observed)

    print("\n=== Prediction under READ COMMITTED ===")
    rc = IsoPredict(
        IsolationLevel.READ_COMMITTED, PredictionStrategy.APPROX_RELAXED
    ).predict(observed)
    print(f"result: {rc.status.value}")
    assert rc.status is Result.SAT
    predicted = rc.predicted
    print(history_to_text(predicted, include_pco=True))
    print(f"fractured read?  read_atomic={is_read_atomic(predicted)}  "
          f"read_committed={is_read_committed(predicted)}")

    print("\n=== Prediction under READ ATOMIC (the §8 extension) ===")
    ra = IsoPredict(
        IsolationLevel.READ_ATOMIC, PredictionStrategy.APPROX_RELAXED
    ).predict(observed)
    print(f"result: {ra.status.value}")
    assert ra.status is Result.UNSAT
    print("-> read atomic forbids observing the order without its invoice; "
          "no unserializable execution exists at this level")


if __name__ == "__main__":
    main()
