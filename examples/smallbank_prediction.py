"""Smallbank pipeline: record -> predict (causal & rc) -> validate.

Reproduces one cell of the paper's Tables 4/5 interactively: run the
Smallbank benchmark for a handful of seeds, predict unserializable
executions with each strategy, and validate every prediction by replay.

Run:  python examples/smallbank_prediction.py [n_seeds]
"""
import sys

from repro.bench_apps import Smallbank, WorkloadConfig, record_observed
from repro.isolation import IsolationLevel
from repro.predict import IsoPredict, PredictionStrategy
from repro.validate import validate_prediction


def run(seed: int, level: IsolationLevel, strategy: PredictionStrategy):
    app = Smallbank(WorkloadConfig.small())
    outcome = record_observed(app, seed)
    analyzer = IsoPredict(level, strategy, max_seconds=90)
    result = analyzer.predict(outcome.history)
    line = (
        f"  seed {seed}: {result.status.value:7s} "
        f"lits={result.stats.get('literals', 0):6d} "
        f"gen={result.stats.get('gen_seconds', 0.0):5.2f}s "
        f"solve={result.stats.get('solve_seconds', 0.0):5.2f}s"
    )
    if result.found:
        replay = Smallbank(WorkloadConfig.small())
        report = validate_prediction(
            result.predicted,
            replay.programs(),
            level,
            observed=outcome.history,
            seed=seed,
            initial=replay.initial_state(),
        )
        line += (
            f"  validated={report.validated}"
            f"{' diverged' if report.diverged else ''}"
        )
        line += f"  cycle: {' < '.join(result.cycle)}"
    print(line)
    return result


def main():
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    for level in (IsolationLevel.CAUSAL, IsolationLevel.READ_COMMITTED):
        for strategy in (
            PredictionStrategy.APPROX_STRICT,
            PredictionStrategy.APPROX_RELAXED,
        ):
            print(f"== smallbank under {level} [{strategy}] ==")
            found = sum(
                bool(run(seed, level, strategy)) for seed in range(n_seeds)
            )
            print(f"  -> {found}/{n_seeds} unserializable predictions\n")


if __name__ == "__main__":
    main()
