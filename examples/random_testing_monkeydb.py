"""MonkeyDB-style random weak-isolation testing (paper §7.3).

Runs each benchmark app on the store with the *random isolation-legal
reads* policy — MonkeyDB's exploration mode — and reports how often the
programmer-written assertions fail and how often the resulting history is
unserializable. Assertion failures are a sufficient (never necessary)
condition for unserializability, so Fail <= Unser on every row.

Run:  python examples/random_testing_monkeydb.py [runs]
"""
import sys

from repro.bench_apps import ALL_APPS, WorkloadConfig, run_random_weak
from repro.isolation import IsolationLevel, is_serializable


def main():
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    for level in (IsolationLevel.CAUSAL, IsolationLevel.READ_COMMITTED):
        print(f"== random exploration under {level} ({runs} runs) ==")
        for app_cls in ALL_APPS:
            failed = unserializable = 0
            example = None
            for seed in range(runs):
                outcome = run_random_weak(
                    app_cls(WorkloadConfig.small()), seed, level
                )
                if outcome.assertion_failed:
                    failed += 1
                    example = example or outcome.failures[0]
                if not is_serializable(outcome.history):
                    unserializable += 1
            assert failed <= unserializable
            print(
                f"  {app_cls.name:10s} fail={failed:2d}/{runs}  "
                f"unser={unserializable:2d}/{runs}"
            )
            if example:
                print(f"             e.g. {example}")
        print()


if __name__ == "__main__":
    main()
