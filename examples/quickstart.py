"""Quickstart: the paper's running example (Figures 1-3), end to end.

Two clients concurrently deposit into the same empty account. The observed
execution is serializable (ending balance 110); IsoPredict predicts the
causally-consistent but unserializable execution where both deposits read
the initial balance (ending balance 60 — a lost update), and validation
confirms the prediction by replaying the application.

Uses the fluent session API: a ``ProgramsSource`` records the raw session
programs (no benchmark class needed), and one ``Analysis`` session carries
the recording through prediction and validation.

Run:  PYTHONPATH=src python examples/quickstart.py

See README.md for the project tour (all five examples, the CLI, and the
``campaign`` subcommand that runs paper-scale sweeps of this pipeline in
parallel).
"""
from repro.api import Analysis
from repro.isolation import is_causal, is_serializable
from repro.sources import ProgramsSource
from repro.viz import history_to_text


def deposit(amount):
    """Algorithm 1 from the paper."""

    def program(client, rng):
        balance = client.get("acct")  # implicitly starts a transaction
        client.put("acct", (balance or 0) + amount)
        client.commit()

    return program


def make_programs():
    return {"s1": deposit(50), "s2": deposit(60)}


def main():
    session = (
        Analysis(ProgramsSource(make_programs, initial={"acct": 0}, seed=0))
        .under("causal")
        .using("approx-relaxed")
    )

    observed = session.history  # records once, cached for the session
    print("=== Observed execution (serializable) ===")
    print(history_to_text(observed))
    assert is_serializable(observed)

    print("\n=== Predicting under causal consistency ===")
    batch = session.predict()
    assert batch.found, "the deposit example always has a prediction"
    result = batch.best
    predicted = result.predicted
    print(history_to_text(predicted, include_pco=True))
    print(f"\nstill causal:     {is_causal(predicted)}")
    print(f"serializable:     {bool(is_serializable(predicted))}")
    print(f"pco cycle:        {' < '.join(result.cycle)}")

    print("\n=== Validating by replaying the application ===")
    report = session.validate()
    print(f"validated (feasible & unserializable): {report.validated}")
    print(f"diverged: {report.diverged}")
    balances = [
        t.writes[0].value for t in report.validating.transactions()
    ]
    print(f"written balances in the validating run: {sorted(balances)}")
    print("-> the lost update is real: one deposit overwrites the other")


if __name__ == "__main__":
    main()
