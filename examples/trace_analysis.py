"""Offline trace analysis: record, save, reload, check, and render.

Demonstrates the "any data store" angle the paper emphasizes: IsoPredict's
analysis consumes recorded traces, so this example records a TPC-C run,
round-trips it through the JSON trace format, checks its isolation levels,
predicts, and renders both histories as Graphviz DOT.

Run:  python examples/trace_analysis.py [outdir]
"""
import sys
from pathlib import Path

from repro.bench_apps import TPCC, WorkloadConfig, record_observed
from repro.history import load_history, save_history
from repro.isolation import (
    IsolationLevel,
    is_causal,
    is_read_committed,
    is_serializable,
)
from repro.predict import IsoPredict, PredictionStrategy
from repro.viz import history_to_dot, history_to_text


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("/tmp/isopredict")
    outdir.mkdir(parents=True, exist_ok=True)

    print("recording a TPC-C execution (3 sessions x 4 transactions)...")
    outcome = record_observed(TPCC(WorkloadConfig.small()), seed=4)
    trace_path = outdir / "tpcc_observed.json"
    save_history(outcome.history, trace_path)
    print(f"  trace written to {trace_path}")

    observed = load_history(trace_path)  # round-trip through the format
    print(f"  {len(observed)} committed transactions")
    print(f"  serializable:   {bool(is_serializable(observed))}")
    print(f"  causal:         {is_causal(observed)}")
    print(f"  read committed: {is_read_committed(observed)}")

    print("\npredicting under read committed (approx-strict)...")
    result = IsoPredict(
        IsolationLevel.READ_COMMITTED,
        PredictionStrategy.APPROX_STRICT,
        max_seconds=120,
    ).predict(observed)
    print(f"  result: {result.status.value}")
    if result.found:
        predicted_path = outdir / "tpcc_predicted.json"
        save_history(result.predicted, predicted_path)
        (outdir / "tpcc_observed.dot").write_text(history_to_dot(observed))
        (outdir / "tpcc_predicted.dot").write_text(
            history_to_dot(result.predicted, include_pco=True)
        )
        print(f"  predicted trace: {predicted_path}")
        print(f"  DOT renderings in {outdir}")
        print(f"  pco cycle: {' < '.join(result.cycle)}")
        print("\n" + history_to_text(result.predicted, include_pco=True))


if __name__ == "__main__":
    main()
