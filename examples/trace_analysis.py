"""Offline trace analysis: record, save, reload, analyze — no app in the loop.

Demonstrates the "any data store" angle the paper emphasizes (§3): the
analysis consumes recorded histories, so anything that can produce a trace
file can be analyzed. This example records a TPC-C run and saves it with
provenance metadata, then — as a *separate* analysis, the way an externally
recorded trace would arrive — loads it through ``TraceFileSource`` and
predicts without any ``AppSpec``. Validation is unavailable for external
traces (there is no application to replay), and the API reports that
instead of crashing.

Run:  python examples/trace_analysis.py [outdir]
"""
import sys
from pathlib import Path

from repro.api import Analysis, ReplayUnavailable
from repro.bench_apps import TPCC, WorkloadConfig, record_observed
from repro.history import load_trace, save_history
from repro.isolation import is_causal, is_read_committed, is_serializable
from repro.sources import TraceFileSource
from repro.viz import history_to_dot, history_to_text


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("/tmp/isopredict")
    outdir.mkdir(parents=True, exist_ok=True)

    print("recording a TPC-C execution (3 sessions x 4 transactions)...")
    outcome = record_observed(TPCC(WorkloadConfig.small()), seed=4)
    trace_path = outdir / "tpcc_observed.json"
    save_history(
        outcome.history,
        trace_path,
        meta={"app": "tpcc", "seed": 4, "workload": "small"},
    )
    print(f"  trace written to {trace_path}")

    # From here on, only the trace file is used — exactly the position an
    # externally recorded history arrives in.
    trace = load_trace(trace_path)
    observed = trace.history
    print(f"  format version {trace.version}, meta {trace.meta}")
    print(f"  {len(observed)} committed transactions")
    print(f"  serializable:   {bool(is_serializable(observed))}")
    print(f"  causal:         {is_causal(observed)}")
    print(f"  read committed: {is_read_committed(observed)}")

    print("\npredicting under read committed (approx-strict)...")
    session = (
        Analysis(TraceFileSource(trace_path))
        .under("rc")
        .using("approx-strict", max_seconds=120)
    )
    batch = session.predict()
    result = batch.best
    print(f"  result: {batch.status.value}")
    if batch.found:
        predicted_path = outdir / "tpcc_predicted.json"
        save_history(result.predicted, predicted_path, meta=trace.meta)
        (outdir / "tpcc_observed.dot").write_text(history_to_dot(observed))
        (outdir / "tpcc_predicted.dot").write_text(
            history_to_dot(result.predicted, include_pco=True)
        )
        print(f"  predicted trace: {predicted_path}")
        print(f"  DOT renderings in {outdir}")
        print(f"  pco cycle: {' < '.join(result.cycle)}")
        print("\n" + history_to_text(result.predicted, include_pco=True))

        try:
            session.validate()
        except ReplayUnavailable as exc:
            print(f"\nvalidation skipped (as the API promises): {exc}")


if __name__ == "__main__":
    main()
