"""Ablation: pco encodings (stratified default vs the paper's rank guards).

The paper delegates well-foundedness to Z3's integer reasoning via rank;
our CDCL substrate decides the stratified closure encoding orders of
magnitude faster (DESIGN.md §5.1). This bench quantifies the gap and checks
the two encodings agree on every verdict.
"""
import time

import pytest

from harness import format_table
from repro import gallery
from repro.isolation import IsolationLevel
from repro.predict import IsoPredict, PredictionStrategy

CASES = [
    ("deposit", gallery.deposit_observed, PredictionStrategy.APPROX_RELAXED),
    ("fig7a", gallery.fig7a_wikipedia_observed,
     PredictionStrategy.APPROX_RELAXED),
    ("fig7c", gallery.fig7c_wikipedia_observed,
     PredictionStrategy.APPROX_RELAXED),
    ("fig8", gallery.fig8a_smallbank_observed,
     PredictionStrategy.APPROX_STRICT),
]


@pytest.mark.parametrize("name,make,strategy", CASES,
                         ids=[c[0] for c in CASES])
def test_encodings_agree(benchmark, name, make, strategy, capsys):
    observed = make()

    def run(mode):
        start = time.monotonic()
        result = IsoPredict(
            IsolationLevel.CAUSAL, strategy, pco_mode=mode, max_seconds=120
        ).predict(observed)
        return result.status, time.monotonic() - start

    (s_status, s_time) = benchmark.pedantic(
        run, args=("stratified",), rounds=1, iterations=1
    )
    (r_status, r_time) = run("rank")
    with capsys.disabled():
        print(
            f"\n[ablation:encoding] {name:8s} {str(strategy):15s} "
            f"stratified={s_status.value}/{s_time:.2f}s "
            f"rank={r_status.value}/{r_time:.2f}s"
        )
    assert s_status == r_status


def test_encoding_comparison_on_benchmark_app(capsys):
    """Timing comparison on a real recorded Smallbank execution."""
    from repro.bench_apps import Smallbank, WorkloadConfig, record_observed

    observed = record_observed(Smallbank(WorkloadConfig.small()), 0).history
    rows = []
    verdicts = []
    for mode in ("stratified", "rank"):
        start = time.monotonic()
        result = IsoPredict(
            IsolationLevel.CAUSAL,
            PredictionStrategy.APPROX_RELAXED,
            pco_mode=mode,
            max_seconds=180,
        ).predict(observed)
        elapsed = time.monotonic() - start
        verdicts.append(result.status)
        rows.append(
            [
                mode,
                result.status.value,
                f"{elapsed:.2f} s",
                f"{result.stats.get('conflicts', 0)}",
                f"{result.stats.get('decisions', 0)}",
            ]
        )
    with capsys.disabled():
        print(
            format_table(
                "Ablation: pco encodings on Smallbank (small, seed 0)",
                ["encoding", "result", "time", "conflicts", "decisions"],
                rows,
            )
        )
