"""Table 3: events and committed transactions per benchmark program.

Regenerates the workload-characterization table: average KV reads/writes
and committed (read-only) transaction counts across seeds, per workload.
Our laptop defaults run the same transaction mixes at a smaller keyspace /
op multiplier, so counts are proportionally smaller than the paper's; raise
``--ops-scale`` (CLI) or ``ops_scale`` to approach paper-scale event counts.
"""
import pytest

from harness import SEEDS, format_table, workloads
from repro.bench_apps import ALL_APPS, record_observed


def characterize(app_cls, config, seeds=SEEDS):
    reads = writes = committed = read_only = 0
    for seed in range(seeds):
        out = record_observed(app_cls(config), seed)
        txns = out.history.transactions()
        committed += len(txns)
        read_only += sum(1 for t in txns if t.is_read_only())
        reads += sum(len(t.reads) for t in txns)
        writes += sum(len(t.writes) for t in txns)
    n = seeds
    return (reads / n, writes / n, committed / n, read_only / n)


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
def test_table3_row(benchmark, app_cls, capsys):
    config = workloads()[0]
    result = benchmark.pedantic(
        characterize, args=(app_cls, config), rounds=1, iterations=1
    )
    reads, writes, committed, read_only = result
    with capsys.disabled():
        print(
            f"\n[table3:{config.label}] {app_cls.name:10s} "
            f"reads={reads:7.1f} writes={writes:6.1f} "
            f"committed={committed:4.1f} (read-only={read_only:4.1f})"
        )


def test_table3_full_table(capsys):
    rows = []
    for config in workloads():
        for app_cls in ALL_APPS:
            reads, writes, committed, ro = characterize(app_cls, config)
            rows.append(
                [
                    app_cls.name,
                    config.label,
                    f"{reads:.1f}",
                    f"{writes:.1f}",
                    f"{committed:.1f}",
                    f"{ro:.1f}",
                ]
            )
    with capsys.disabled():
        print(
            format_table(
                "Table 3: workload characteristics "
                f"(avg over {SEEDS} seeds)",
                ["program", "workload", "reads", "writes",
                 "committed", "read-only"],
                rows,
            )
        )
