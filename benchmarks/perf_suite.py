"""Reproducible performance suite for the prediction solve path.

Runs a fixed matrix of benchmark-app histories (smallbank / wikipedia /
tpcc at several workload sizes, plus ``predict_many`` k-sweeps) through
the predictive analysis, measuring median-of-N end-to-end wall time and
the per-stage (encode / compile / solve / decode) split with solver
counters, and writes the machine-readable ``BENCH_<n>.json`` trajectory
file every perf-minded PR compares against.

Usage::

    python benchmarks/perf_suite.py --quick --out BENCH_7.json
    python benchmarks/perf_suite.py                       # full matrix
    python benchmarks/perf_suite.py --quick \
        --baseline BENCH_7.json --fail-threshold 2.0 \
        --telemetry-overhead-gate 3.0                     # CI gate

``--quick`` drops the large-workload scenarios and halves the repeat
count; it still covers every mid-size scenario, which is the tier speedup
targets are stated over. With ``--baseline`` the run exits non-zero when
any shared scenario's median wall exceeds ``--fail-threshold`` times the
baseline's (see :func:`repro.perf.compare_profiles`).

Scenario walls measure the *analysis* (encode→compile→solve→decode via
one cold :class:`repro.predict.IsoPredict` enumeration per run); history
recording happens once per scenario, outside the timed region.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Counters are comparable across runs and machines without any hash-seed
# pinning: the encoder sorts every key-set iteration (PR 4), so CNF
# variable ordering — and with it the whole search trajectory — no longer
# depends on Python's per-process string-hash seed.

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401  (installed package wins)
except ModuleNotFoundError:  # running from a checkout without pip install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench_apps import ALL_APPS, WorkloadConfig, record_observed
from repro.isolation import IsolationLevel
from repro.store.backends import make_store_backend, store_backend_spec
from repro.perf import (
    ScenarioResult,
    compare_profiles,
    load_report,
    run_measured,
    write_report,
)
from repro.predict import IsoPredict, PredictionStrategy

_APPS = {app.name: app for app in ALL_APPS}

#: Seed used for every recording: scenario identity must not drift run to
#: run, or the trajectory file stops being comparable across PRs.
RECORD_SEED = 1


def _workload(label: str) -> WorkloadConfig:
    if label == "tiny":
        return WorkloadConfig.tiny()
    if label == "small":
        return WorkloadConfig.small()
    if label == "large":
        return WorkloadConfig.large()
    raise ValueError(f"unknown workload label {label!r}")


#: (name, size class, app, workload, isolation, strategy, k, solver, store).
#: Size classes are assigned by pre-PR-3 median wall on the reference
#: machine: under 1 s is ``small`` (tracked mainly for counters and
#: encode/compile trends), 1–10 s is ``mid`` (the tier speedup targets
#: are stated over), above 10 s is ``large`` (skipped by ``--quick``).
#: The two ``portfolio`` scenarios track the backend seam's overhead and
#: win-rate counters release-over-release (deterministic mode, so their
#: search counters stay machine-independent). The ``store`` column selects
#: the store backend the scenario's history records on (the timed region
#: is the analysis, so sharded rows measure the sharded *workloads*, not
#: routing overhead — recording happens once, outside the timer).
SCENARIOS = [
    ("smallbank-tiny-k1", "small", "smallbank", "tiny", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
    ("wikipedia-tiny-k1", "small", "wikipedia", "tiny", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
    ("tpcc-tiny-k1", "small", "tpcc", "tiny", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
    ("smallbank-small-rc-strict-k1", "small", "smallbank", "small", "rc",
     "approx-strict", 1, "inprocess", "inmemory"),
    ("smallbank-tiny-portfolio2", "small", "smallbank", "tiny", "causal",
     "approx-relaxed", 1, "portfolio:2:deterministic", "inmemory"),
    ("smallbank-small-k1", "mid", "smallbank", "small", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
    ("wikipedia-small-k1", "mid", "wikipedia", "small", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
    ("tpcc-small-k1", "mid", "tpcc", "small", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
    ("smallbank-small-k4", "mid", "smallbank", "small", "causal",
     "approx-relaxed", 4, "inprocess", "inmemory"),
    ("tpcc-small-rc-strict-k1", "mid", "tpcc", "small", "rc",
     "approx-strict", 1, "inprocess", "inmemory"),
    ("smallbank-small-portfolio4", "mid", "smallbank", "small", "causal",
     "approx-relaxed", 1, "portfolio:4:deterministic", "inmemory"),
    # -- sharded scenario workloads (PR 5) ------------------------------
    ("shardtransfer-small-sharded4-k1", "mid", "shardtransfer", "small",
     "causal", "approx-relaxed", 1, "inprocess", "sharded:4"),
    ("shardtransfer-small-sharded4-rc-k2", "small", "shardtransfer", "small",
     "rc", "approx-relaxed", 2, "inprocess", "sharded:4"),
    ("smallbank-sharded-small-sharded3-k1", "small", "smallbank_sharded",
     "small", "causal", "approx-relaxed", 1, "inprocess", "sharded:3"),
    ("smallbank-large-k1", "large", "smallbank", "large", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
    ("wikipedia-large-k1", "large", "wikipedia", "large", "causal",
     "approx-relaxed", 1, "inprocess", "inmemory"),
]

#: Streaming-service scenarios (PR 7): the same recorded histories pushed
#: through the windowed incremental engine (:mod:`repro.serve`). The row's
#: wall is the whole stream session; its ``rates`` record findings/sec,
#: ingest lag and per-window latency — the numbers a service is judged by.
#: ``stream-smallbank-large`` is the scale story: the encoding is
#: quadratic in transaction pairs, so windowing the same large history
#: that ``smallbank-large-k1`` solves whole must hold every per-window
#: wall strictly under that scenario's whole-history wall.
#: (name, size, kind, target, workload, isolation, window, stride, k, runs)
STREAM_SCENARIOS = [
    ("stream-smallbank-small-w6s3", "mid", "bench", "smallbank", "small",
     "causal", 6, 3, 2, 1),
    ("stream-fuzz3-w8s4", "mid", "fuzz", 0, "small", "causal", 8, 4, 2, 3),
    ("stream-smallbank-large-w8s4", "large", "bench", "smallbank", "large",
     "causal", 8, 4, 1, 1),
]


def run_scenario(
    name: str,
    size: str,
    app: str,
    workload: str,
    isolation: str,
    strategy: str,
    k: int,
    solver: str,
    store: str,
    repeats: int,
    max_seconds: float,
) -> ScenarioResult:
    backend = (
        None if store == "inmemory" else make_store_backend(store)
    )
    history = record_observed(
        _APPS[app](_workload(workload)), RECORD_SEED, backend=backend
    ).history

    def once() -> dict:
        analyzer = IsoPredict(
            IsolationLevel.parse(isolation),
            PredictionStrategy.parse(strategy),
            max_seconds=max_seconds,
            solver=solver,
        )
        batch = analyzer.predict_many(history, k=k)
        stats = dict(batch.stats)
        stats["status"] = batch.status.value
        return stats

    return run_measured(
        name,
        size,
        params={
            "app": app,
            "workload": workload,
            "seed": RECORD_SEED,
            "isolation": isolation,
            "strategy": strategy,
            "k": k,
            "solver": solver,
            "store": store_backend_spec(store),
            "transactions": len(history.transactions()),
        },
        scenario=once,
        repeats=repeats,
    )


def run_stream_scenario(
    name: str,
    size: str,
    kind: str,
    target,
    workload: str,
    isolation: str,
    window: int,
    stride: int,
    k: int,
    runs: int,
    repeats: int,
    max_seconds: float,
) -> ScenarioResult:
    from repro.serve import StreamingAnalysis

    params = {
        "kind": kind,
        "workload": workload,
        "seed": RECORD_SEED,
        "isolation": isolation,
        "window": window,
        "stride": stride,
        "k": k,
        "runs": runs,
    }
    if kind == "bench":
        # recording happens once, outside the timed region, matching the
        # batch scenarios: the timed stream is segmentation + analysis
        history = record_observed(
            _APPS[target](_workload(workload)), RECORD_SEED
        ).history
        params["app"] = target
        params["transactions"] = len(history.transactions())

        def make_source():
            return history

    else:
        from repro.sources import FuzzSource

        params["shape_seed"] = target

        # fuzz streams time ingest too: recording *is* part of a service
        def make_source():
            return FuzzSource(
                shape_seed=target,
                config=_workload(workload),
                seed=RECORD_SEED,
                count=runs,
            )

    def once() -> dict:
        engine = StreamingAnalysis(
            make_source(),
            window=window,
            stride=stride,
            isolation=isolation,
            k=k,
            max_seconds=max_seconds,
            max_runs=runs,
        )
        return engine.run().metrics.to_stats()

    return run_measured(name, size, params, scenario=once, repeats=repeats)


#: The telemetry overhead pair (PR 8): the mid-size reference scenario
#: measured back-to-back with telemetry off and on (spans + registry +
#: trace export to a scratch file). Telemetry is opt-in and must stay
#: nearly free when opted into: CI gates the enabled median at < 3%
#: over the disabled one (``--telemetry-overhead-gate``).
TELEMETRY_PAIR = ("telemetry-off-smallbank-small-k1",
                  "telemetry-on-smallbank-small-k1")


def run_telemetry_pair(repeats: int, max_seconds: float):
    import os
    import shutil
    import tempfile

    from repro.obs import observe_analysis_stats, telemetry_session

    history = record_observed(
        _APPS["smallbank"](WorkloadConfig.small()), RECORD_SEED
    ).history
    params = {
        "app": "smallbank",
        "workload": "small",
        "seed": RECORD_SEED,
        "isolation": "causal",
        "strategy": "approx-relaxed",
        "k": 1,
        "solver": "inprocess",
        "store": "inmemory",
        "transactions": len(history.transactions()),
    }

    def analyze() -> dict:
        analyzer = IsoPredict(
            IsolationLevel.parse("causal"),
            PredictionStrategy.parse("approx-relaxed"),
            max_seconds=max_seconds,
        )
        batch = analyzer.predict_many(history, k=1)
        stats = dict(batch.stats)
        stats["status"] = batch.status.value
        return stats

    scratch = tempfile.mkdtemp(prefix="isopredict-bench-telemetry-")

    def analyze_with_telemetry() -> dict:
        # the full enabled path: session install, stage spans, stat
        # counters, part merge at exit — everything a --telemetry run pays
        with telemetry_session(
            os.path.join(scratch, "trace.jsonl"), command="bench"
        ):
            stats = analyze()
            observe_analysis_stats(stats)
            return stats

    off_name, on_name = TELEMETRY_PAIR
    try:
        off = run_measured(
            off_name, "mid", {**params, "telemetry": "off"},
            scenario=analyze, repeats=repeats,
        )
        on = run_measured(
            on_name, "mid", {**params, "telemetry": "on"},
            scenario=analyze_with_telemetry, repeats=repeats,
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return off, on


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="IsoPredict solve-path performance suite"
    )
    parser.add_argument(
        "--out", default="BENCH_7.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip large scenarios and halve repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="runs per scenario (default: 3, quick: 2)",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated scenario-name substrings to run",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=600.0,
        help="per-enumeration solver budget",
    )
    parser.add_argument(
        "--solver", default=None, metavar="SPEC",
        help="override the solver backend for every selected scenario "
             "(e.g. portfolio:4:deterministic); scenario names gain a "
             "'@SPEC' suffix so per-backend profiles coexist in one file",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="BENCH_*.json to compare against (regression gate)",
    )
    parser.add_argument(
        "--telemetry-overhead-gate", type=float, default=None,
        metavar="PCT",
        help="fail when the telemetry-on median exceeds the telemetry-off "
             "median by more than PCT percent (CI uses 3.0)",
    )
    parser.add_argument(
        "--fail-threshold", type=float, default=2.0,
        help="fail when a scenario exceeds this x baseline median",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (2 if args.quick else 3)

    def keep(name: str, size: str) -> bool:
        if args.quick and size == "large":
            return False
        if args.only and not any(
            frag.strip() in name for frag in args.only.split(",")
        ):
            return False
        return True

    selected = [s for s in SCENARIOS if keep(s[0], s[1])]
    stream_selected = [s for s in STREAM_SCENARIOS if keep(s[0], s[1])]
    telemetry_selected = [n for n in TELEMETRY_PAIR if keep(n, "mid")]
    if not selected and not stream_selected and not telemetry_selected:
        print("no scenarios selected", file=sys.stderr)
        return 2

    results = []
    for (name, size, app, workload, isolation, strategy, k, solver,
         store) in selected:
        if args.solver:
            solver = args.solver
            name = f"{name}@{solver}"
        result = run_scenario(
            name, size, app, workload, isolation, strategy, k, solver,
            store, repeats=repeats, max_seconds=args.max_seconds,
        )
        solve = result.stages.get("solve", 0.0)
        print(
            f"{name:32} [{size:5}] median={result.wall_median:7.3f}s "
            f"(solve {solve:6.3f}s, "
            f"{result.counters.get('propagations', 0):,} props, "
            f"{result.counters.get('conflicts', 0):,} conflicts)",
            flush=True,
        )
        results.append(result)

    for (name, size, kind, target, workload, isolation, window, stride, k,
         runs) in stream_selected:
        result = run_stream_scenario(
            name, size, kind, target, workload, isolation, window, stride,
            k, runs, repeats=repeats, max_seconds=args.max_seconds,
        )
        rates = result.rates
        print(
            f"{name:32} [{size:5}] median={result.wall_median:7.3f}s "
            f"(windows {result.counters.get('windows', 0)}, "
            f"findings {result.counters.get('findings', 0)}, "
            f"{rates.get('findings_per_sec', 0.0):.2f}/s, "
            f"window max {rates.get('window_seconds_max', 0.0):.3f}s, "
            f"lag max {rates.get('ingest_lag_seconds_max', 0.0):.3f}s)",
            flush=True,
        )
        results.append(result)

    telemetry_failure = None
    if telemetry_selected:
        off, on = run_telemetry_pair(
            repeats=repeats, max_seconds=args.max_seconds
        )
        overhead = (
            (on.wall_median - off.wall_median) / off.wall_median * 100.0
            if off.wall_median else 0.0
        )
        for result in (off, on):
            print(
                f"{result.name:32} [mid  ] "
                f"median={result.wall_median:7.3f}s",
                flush=True,
            )
        print(f"telemetry overhead: {overhead:+.2f}%", flush=True)
        results.extend([off, on])
        gate = args.telemetry_overhead_gate
        if gate is not None and overhead > gate:
            telemetry_failure = (
                f"telemetry overhead {overhead:+.2f}% exceeds "
                f"{gate:.1f}% gate "
                f"(off {off.wall_median:.3f}s, on {on.wall_median:.3f}s)"
            )

    doc = write_report(
        results,
        args.out,
        meta={
            "quick": args.quick,
            "repeats": repeats,
            "record_seed": RECORD_SEED,
        },
    )
    print(f"wrote {args.out} ({len(results)} scenarios)")

    if args.baseline:
        baseline = load_report(args.baseline)
        regressions = compare_profiles(
            doc, baseline, threshold=args.fail_threshold
        )
        if regressions:
            print(
                f"PERF REGRESSION vs {args.baseline} "
                f"(threshold {args.fail_threshold}x):",
                file=sys.stderr,
            )
            for regression in regressions:
                print(f"  {regression}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(threshold {args.fail_threshold}x)")
    if telemetry_failure:
        print(f"PERF REGRESSION: {telemetry_failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
