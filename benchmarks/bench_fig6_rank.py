"""Figure 6: rank constraints forbid self-justifying ww/pco edges.

On the Fig. 6 history (serializable: t1, t2 write k; t3 reads k from t2)
the rank-guarded encoding proves UNSAT, while the same encoding with rank
disabled invents the self-justifying pair ww(t1,t2)/pco(t1,t3) and reports
a spurious prediction. The stratified encoding is immune by construction.
"""
from harness import format_table
from repro import gallery
from repro.isolation import IsolationLevel
from repro.predict import IsoPredict, PredictionStrategy
from repro.smt import Result

LEVEL = IsolationLevel.CAUSAL
STRATEGY = PredictionStrategy.APPROX_RELAXED


def run_variants():
    h = gallery.fig6_history()
    rank_on = IsoPredict(LEVEL, STRATEGY, pco_mode="rank").predict(h)
    rank_off = IsoPredict(
        LEVEL, STRATEGY, pco_mode="rank", include_rank=False
    ).predict(h)
    stratified = IsoPredict(LEVEL, STRATEGY).predict(h)
    return rank_on, rank_off, stratified


def test_fig6_rank_prevents_self_justification(benchmark, capsys):
    rank_on, rank_off, stratified = benchmark.pedantic(
        run_variants, rounds=1, iterations=1
    )
    with capsys.disabled():
        print(
            format_table(
                "Fig. 6: self-justifying edges ablation",
                ["encoding", "result", "sound?"],
                [
                    ["rank-guarded", rank_on.status.value, "yes"],
                    ["rank disabled", rank_off.status.value,
                     "NO (spurious)"],
                    ["stratified (default)", stratified.status.value, "yes"],
                ],
            )
        )
    assert rank_on.status is Result.UNSAT
    assert rank_off.status is Result.SAT  # the unsound ablation
    assert stratified.status is Result.UNSAT
