"""Regenerate every paper table in one run (writes results/ markdown).

Usage::

    python benchmarks/run_all.py [--seeds N] [--runs N] [--jobs N] [--large]

Since PR 1 the whole evaluation is driven through the campaign subsystem:
each table becomes one multi-cell :class:`repro.campaign.CampaignSpec` and
the rounds fan out over ``--jobs`` worker processes. Table 3 is derived
from the recording statistics the Table 4 campaign already produced, and
Tables 6/7 reuse the Table 4/5 prediction cells instead of recomputing
them. Everything is saved under ``benchmarks/results/`` for EXPERIMENTS.md.
"""
from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seeds", type=int, default=None)
    parser.add_argument("--runs", type=int, default=None)
    parser.add_argument(
        "--jobs", type=int,
        default=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        help="campaign worker processes",
    )
    parser.add_argument("--large", action="store_true")
    parser.add_argument("--out", default=None)
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-round campaign progress",
    )
    args = parser.parse_args()
    if args.seeds is not None:
        os.environ["REPRO_BENCH_SEEDS"] = str(args.seeds)
    if args.runs is not None:
        os.environ["REPRO_BENCH_RUNS"] = str(args.runs)
    if args.large:
        os.environ["REPRO_BENCH_LARGE"] = "1"
    os.environ["REPRO_BENCH_JOBS"] = str(args.jobs)

    import harness
    import importlib

    importlib.reload(harness)
    from harness import (
        MAX_SECONDS,
        PredictionRow,
        RUNS,
        SEEDS,
        format_table,
        workloads,
    )
    from repro.bench_apps import ALL_APPS
    from repro.campaign import CampaignExecutor, CampaignSpec
    from repro.isolation import IsolationLevel
    from repro.predict import PredictionStrategy

    app_names = tuple(app.name for app in ALL_APPS)
    workload_labels = tuple(c.label for c in workloads())
    strategies = tuple(str(s) for s in PredictionStrategy.ALL)
    log = None if args.quiet else print

    def run(spec: CampaignSpec):
        return CampaignExecutor(spec, jobs=args.jobs, log=log).run()

    sections: list[str] = []
    start = time.monotonic()

    # ----- Tables 4 and 5: one whole-sweep campaign per isolation level ---
    reports = {}
    for table_no, level in (
        ("4", IsolationLevel.CAUSAL),
        ("5", IsolationLevel.READ_COMMITTED),
    ):
        spec = CampaignSpec(
            name=f"table{table_no}",
            apps=app_names,
            isolation_levels=(str(level),),
            strategies=strategies,
            workloads=workload_labels,
            seeds=SEEDS,
            max_seconds=MAX_SECONDS,
        )
        reports[table_no] = run(spec)

    # ----- Table 3: recording stats from the Table 4 campaign's rounds ----
    rows = []
    for label in workload_labels:
        for app in app_names:
            picked = [
                r
                for r in reports["4"].results
                if r.app == app
                and r.workload == label
                and r.strategy == strategies[0]
                and r.status != "error"
            ]
            n = max(1, len(picked))
            rows.append(
                [app, label,
                 f"{sum(r.reads for r in picked) / n:.1f}",
                 f"{sum(r.writes for r in picked) / n:.1f}",
                 f"{sum(r.committed for r in picked) / n:.1f}",
                 f"{sum(r.read_only for r in picked) / n:.1f}"]
            )
    sections.append(
        format_table(
            f"Table 3: workload characteristics (avg over {SEEDS} seeds)",
            ["program", "workload", "reads", "writes", "committed",
             "read-only"],
            rows,
        )
    )
    print(sections[-1], flush=True)

    headers = [
        "program", "strategy", "unk", "unsat", "sat", "validated (div)",
        "literals", "gen", "solve-sat", "solve-unsat", "workload",
    ]
    for table_no, level in (("4", "causal"), ("5", "rc")):
        rows = []
        for label in workload_labels:
            for app in app_names:
                for strategy in strategies:
                    cell = reports[table_no].cell(
                        "predict", app, label, level, strategy
                    )
                    rows.append(
                        PredictionRow.from_cell(cell).as_cells() + [label]
                    )
        sections.append(
            format_table(
                f"Table {table_no}: prediction under {level} "
                f"({SEEDS} seeds)",
                headers,
                rows,
            )
        )
        print(sections[-1], flush=True)

    # ----- Tables 6 and 7: exploration campaigns + reused prediction cells
    label = workload_labels[0]
    explore = {}
    for name, modes, levels in (
        ("table6-monkeydb", ("monkeydb",), ("causal",)),
        ("table7-monkeydb", ("monkeydb",), ("rc",)),
        ("table7-interleaved", ("interleaved",), ("rc",)),
    ):
        spec = CampaignSpec(
            name=name,
            apps=app_names,
            isolation_levels=levels,
            workloads=(label,),
            seeds=RUNS,
            modes=modes,
        )
        explore[name] = run(spec)

    def iso_pct(report, app, level, strategy):
        cell = report.cell("predict", app, label, level, strategy)
        denom = max(1, cell.rounds - cell.errors)
        return f"{round(100 * cell.validated / denom)}%"

    rows = []
    for app in app_names:
        mk = explore["table6-monkeydb"].cell(
            "monkeydb", app, label, "causal", "-"
        )
        rows.append(
            [app, f"{round(100 * mk.fail_rate)}%",
             f"{round(100 * mk.unser_rate)}%",
             iso_pct(reports["4"], app, "causal", "approx-relaxed")]
        )
    sections.append(
        format_table(
            f"Table 6: MonkeyDB ({RUNS} runs) vs IsoPredict under causal",
            ["program", "mk fail", "mk unser", "isopredict unser"],
            rows,
        )
    )
    print(sections[-1], flush=True)

    rows = []
    for app in app_names:
        mk = explore["table7-monkeydb"].cell("monkeydb", app, label, "rc", "-")
        realistic = explore["table7-interleaved"].cell(
            "interleaved", app, label, "rc", "-"
        )
        rows.append(
            [app, f"{round(100 * mk.fail_rate)}%",
             f"{round(100 * mk.unser_rate)}%",
             iso_pct(reports["5"], app, "rc", "approx-strict"),
             f"{round(100 * realistic.fail_rate)}%"]
        )
    sections.append(
        format_table(
            f"Table 7: MonkeyDB vs IsoPredict vs realistic rc executor "
            f"({RUNS} runs)",
            ["program", "mk fail", "mk unser", "isopredict unser",
             "realistic fail"],
            rows,
        )
    )
    print(sections[-1], flush=True)

    elapsed = time.monotonic() - start
    footer = (
        f"\n(total {elapsed:.0f}s, seeds={SEEDS}, runs={RUNS}, "
        f"jobs={args.jobs})"
    )
    print(footer)

    out_path = Path(args.out) if args.out else (
        Path(__file__).parent / "results" / "tables.txt"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text("\n".join(sections) + footer + "\n")
    print(f"written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
