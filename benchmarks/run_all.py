"""Regenerate every paper table in one run (writes results/ markdown).

Usage::

    python benchmarks/run_all.py [--seeds N] [--runs N] [--large]

This is the programmatic face of the pytest benches: it calls the same row
functions and renders the full Tables 3-7 plus the figure verdicts, saving
everything under ``benchmarks/results/`` for EXPERIMENTS.md.
"""
from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seeds", type=int, default=None)
    parser.add_argument("--runs", type=int, default=None)
    parser.add_argument("--large", action="store_true")
    parser.add_argument("--out", default=None)
    args = parser.parse_args()
    if args.seeds is not None:
        os.environ["REPRO_BENCH_SEEDS"] = str(args.seeds)
    if args.runs is not None:
        os.environ["REPRO_BENCH_RUNS"] = str(args.runs)
    if args.large:
        os.environ["REPRO_BENCH_LARGE"] = "1"

    import harness
    import importlib

    importlib.reload(harness)
    from harness import (
        RUNS,
        SEEDS,
        format_table,
        interleaved_row,
        monkeydb_row,
        prediction_row,
        workloads,
    )
    from repro.bench_apps import ALL_APPS, record_observed
    from repro.isolation import IsolationLevel
    from repro.predict import PredictionStrategy

    sections: list[str] = []
    start = time.monotonic()

    # ----- Table 3 ------------------------------------------------------
    rows = []
    for config in workloads():
        for app_cls in ALL_APPS:
            reads = writes = committed = ro = 0
            for seed in range(SEEDS):
                out = record_observed(app_cls(config), seed)
                txns = out.history.transactions()
                committed += len(txns)
                ro += sum(1 for t in txns if t.is_read_only())
                reads += sum(len(t.reads) for t in txns)
                writes += sum(len(t.writes) for t in txns)
            rows.append(
                [app_cls.name, config.label, f"{reads / SEEDS:.1f}",
                 f"{writes / SEEDS:.1f}", f"{committed / SEEDS:.1f}",
                 f"{ro / SEEDS:.1f}"]
            )
    sections.append(
        format_table(
            f"Table 3: workload characteristics (avg over {SEEDS} seeds)",
            ["program", "workload", "reads", "writes", "committed",
             "read-only"],
            rows,
        )
    )
    print(sections[-1], flush=True)

    # ----- Tables 4 and 5 -------------------------------------------------
    headers = [
        "program", "strategy", "unk", "unsat", "sat", "validated (div)",
        "literals", "gen", "solve-sat", "solve-unsat", "workload",
    ]
    for table_no, level in (
        ("4", IsolationLevel.CAUSAL),
        ("5", IsolationLevel.READ_COMMITTED),
    ):
        rows = []
        for config in workloads():
            for app_cls in ALL_APPS:
                for strategy in PredictionStrategy.ALL:
                    row = prediction_row(app_cls, level, strategy, config)
                    rows.append(row.as_cells() + [config.label])
                    print(
                        f"  [table{table_no}] {app_cls.name} {strategy} "
                        f"{config.label}: sat={row.sat} unsat={row.unsat} "
                        f"validated={row.validated}",
                        flush=True,
                    )
        sections.append(
            format_table(
                f"Table {table_no}: prediction under {level} "
                f"({SEEDS} seeds)",
                headers,
                rows,
            )
        )
        print(sections[-1], flush=True)

    # ----- Table 6 --------------------------------------------------------
    config = workloads()[0]
    rows = []
    for app_cls in ALL_APPS:
        mk = monkeydb_row(app_cls, IsolationLevel.CAUSAL, config)
        iso = prediction_row(
            app_cls,
            IsolationLevel.CAUSAL,
            PredictionStrategy.APPROX_RELAXED,
            config,
        )
        denom = max(1, iso.sat + iso.unsat + iso.unknown)
        rows.append(
            [app_cls.name, f"{mk.fail_pct}%", f"{mk.unser_pct}%",
             f"{round(100 * iso.validated / denom)}%"]
        )
    sections.append(
        format_table(
            f"Table 6: MonkeyDB ({RUNS} runs) vs IsoPredict under causal",
            ["program", "mk fail", "mk unser", "isopredict unser"],
            rows,
        )
    )
    print(sections[-1], flush=True)

    # ----- Table 7 --------------------------------------------------------
    rows = []
    for app_cls in ALL_APPS:
        mk = monkeydb_row(app_cls, IsolationLevel.READ_COMMITTED, config)
        iso = prediction_row(
            app_cls,
            IsolationLevel.READ_COMMITTED,
            PredictionStrategy.APPROX_STRICT,
            config,
        )
        realistic = interleaved_row(app_cls, config)
        denom = max(1, iso.sat + iso.unsat + iso.unknown)
        rows.append(
            [app_cls.name, f"{mk.fail_pct}%", f"{mk.unser_pct}%",
             f"{round(100 * iso.validated / denom)}%",
             f"{realistic.fail_pct}%"]
        )
    sections.append(
        format_table(
            f"Table 7: MonkeyDB vs IsoPredict vs realistic rc executor "
            f"({RUNS} runs)",
            ["program", "mk fail", "mk unser", "isopredict unser",
             "realistic fail"],
            rows,
        )
    )
    print(sections[-1], flush=True)

    elapsed = time.monotonic() - start
    footer = f"\n(total {elapsed:.0f}s, seeds={SEEDS}, runs={RUNS})"
    print(footer)

    out_path = Path(args.out) if args.out else (
        Path(__file__).parent / "results" / "tables.txt"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text("\n".join(sections) + footer + "\n")
    print(f"written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
