"""Figures 1-3: the deposit example — observed, predicted, and verdicts.

Regenerates the paper's motivating figures: the serializable observed
execution (Figs. 1a/2a), the causal-but-unserializable prediction
(Figs. 1b/3a), Fig. 2b's witnessing commit order, and Fig. 3b's
contradiction (no commit order exists).
"""
from repro import gallery
from repro.isolation import (
    IsolationLevel,
    is_causal,
    is_read_committed,
    is_serializable,
)
from repro.predict import IsoPredict, PredictionStrategy
from repro.viz import history_to_dot, history_to_text


def predict_deposit():
    return IsoPredict(
        IsolationLevel.CAUSAL, PredictionStrategy.APPROX_RELAXED
    ).predict(gallery.deposit_observed())


def test_fig1a_2a_observed(benchmark, capsys):
    h = gallery.deposit_observed()
    report = benchmark.pedantic(
        is_serializable, args=(h,), rounds=1, iterations=1
    )
    assert report
    with capsys.disabled():
        print("\n[fig2b] witnessing commit order:", " < ".join(
            report.commit_order))


def test_fig1b_3a_unserializable(benchmark, capsys):
    h = gallery.deposit_unserializable()
    report = benchmark.pedantic(
        is_serializable, args=(h,), rounds=1, iterations=1
    )
    assert not report
    assert is_causal(h) and is_read_committed(h)
    with capsys.disabled():
        print("\n[fig3b] no commit order exists (both co directions force "
              "a ww cycle through t0)")
        print(history_to_text(h, include_pco=True))


def test_fig3a_is_predicted_from_fig2a(benchmark, capsys):
    result = benchmark.pedantic(predict_deposit, rounds=1, iterations=1)
    assert result.found
    t1 = result.predicted.transaction("t1")
    t2 = result.predicted.transaction("t2")
    assert t1.reads[0].writer == "t0"
    assert t2.reads[0].writer == "t0"
    with capsys.disabled():
        print("\n[fig1-3] predicted execution (DOT):")
        print(history_to_dot(result.predicted, include_pco=True))
