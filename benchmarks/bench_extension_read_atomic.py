"""Extension bench: prediction under read atomic (the §8 level).

Read atomic sits strictly between causal and read committed, so its
prediction rates must bracket the two paper tables: at least causal's, at
most rc's. Reported as "Table 4-RA" in EXPERIMENTS.md.
"""
import pytest

from harness import format_table, prediction_row, workloads
from repro.bench_apps import ALL_APPS
from repro.isolation import IsolationLevel
from repro.predict import PredictionStrategy

LEVEL = IsolationLevel.READ_ATOMIC


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
def test_ra_cell(benchmark, app_cls, capsys):
    config = workloads()[0]
    row = benchmark.pedantic(
        prediction_row,
        args=(app_cls, LEVEL, PredictionStrategy.APPROX_RELAXED, config),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print(
            f"\n[table4-ra] {app_cls.name:10s} sat={row.sat} "
            f"unsat={row.unsat} validated={row.validated}"
        )
    assert row.validated <= row.sat


def test_ra_brackets_causal_and_rc(capsys):
    config = workloads()[0]
    strategy = PredictionStrategy.APPROX_RELAXED
    rows = []
    for app_cls in ALL_APPS:
        causal = prediction_row(
            app_cls, IsolationLevel.CAUSAL, strategy, config, validate=False
        )
        ra = prediction_row(app_cls, LEVEL, strategy, config, validate=False)
        rc = prediction_row(
            app_cls,
            IsolationLevel.READ_COMMITTED,
            strategy,
            config,
            validate=False,
        )
        rows.append(
            [app_cls.name, str(causal.sat), str(ra.sat), str(rc.sat)]
        )
        assert causal.sat <= ra.sat <= rc.sat, app_cls.name
    with capsys.disabled():
        print(
            format_table(
                "Table 4-RA: prediction rates across levels (approx-relaxed)",
                ["program", "causal sat", "ra sat", "rc sat"],
                rows,
            )
        )
