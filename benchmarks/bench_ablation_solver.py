"""Ablation: SMT substrate micro-benchmarks.

Times the solver layers the analysis leans on — CDCL propagation on
structured instances, difference-logic assertion/repair throughput, and the
fixed-history serializability check that validation calls in its inner
loop.
"""
import random


from repro import gallery
from repro.isolation import is_serializable
from repro.smt import Bool, Distinct, Implies, Int, Result, Solver
from repro.smt.difference import DifferenceTheory
from repro.smt.sat import SatSolver


def php_solver(holes: int) -> SatSolver:
    pigeons = holes + 1
    s = SatSolver()
    for _ in range(pigeons * holes):
        s.new_var()

    def var(p, h):
        return p * holes + h + 1

    for p in range(pigeons):
        s.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-var(p1, h), -var(p2, h)])
    return s


def test_cdcl_pigeonhole(benchmark):
    def run():
        solver = php_solver(6)
        return solver.solve()

    assert benchmark(run) is Result.UNSAT


def test_difference_logic_throughput(benchmark):
    rng = random.Random(0)
    edges = []
    for i in range(1, 2001):
        x, y = rng.sample(range(80), 2)
        edges.append((i, f"v{x}", f"v{y}", rng.randint(0, 8)))

    def run():
        th = DifferenceTheory()
        asserted = 0
        for sat_var, x, y, c in edges:
            th.add_atom(sat_var, x, y, c)
        for sat_var, *_ in edges:
            if th.assert_literal(sat_var) is None:
                asserted += 1
        return asserted

    assert benchmark(run) > 0


def test_guarded_order_instance(benchmark):
    """The co-style instance shape: guarded chains over 30 integers."""
    rng = random.Random(7)
    pairs = [tuple(rng.sample(range(30), 2)) for _ in range(240)]

    def run():
        solver = Solver()
        xs = [Int(f"t{i}") for i in range(30)]
        solver.add(Distinct(xs))
        for idx, (a, b) in enumerate(pairs):
            solver.add(Implies(Bool(f"g{idx}"), xs[a] < xs[b]))
            if idx % 3 == 0:
                solver.add(Bool(f"g{idx}"))
        return solver.check()

    assert benchmark(run) in (Result.SAT, Result.UNSAT)


def test_fixed_history_serializability_check(benchmark):
    """Validation's inner check on the Fig. 9 observed history."""
    h = gallery.fig9_observed()
    report = benchmark(lambda: is_serializable(h))
    assert report


def test_feature_flag_ablation(capsys):
    """CDCL feature value on the pigeonhole family (classic ablation)."""
    import time

    from harness import format_table

    rows = []
    for label, flags in (
        ("full CDCL", {}),
        ("no VSIDS", {"enable_vsids": False}),
        ("no restarts", {"enable_restarts": False}),
        ("no learning", {"enable_learning": False}),
    ):
        solver = php_solver(6)
        for attr, value in flags.items():
            setattr(solver, attr, value)
        if not solver.enable_learning:
            solver._max_learnts = 8.0
        start = time.monotonic()
        result = solver.solve(max_seconds=60)
        rows.append(
            [
                label,
                result.value,
                f"{time.monotonic() - start:.2f} s",
                str(solver.stats["conflicts"]),
            ]
        )
    with capsys.disabled():
        print(
            format_table(
                "Ablation: CDCL features on PHP(7,6)",
                ["configuration", "result", "time", "conflicts"],
                rows,
            )
        )
    assert all(r[1] in ("unsat", "unknown") for r in rows)
