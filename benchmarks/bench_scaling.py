"""Scaling study: prediction cost vs. workload size.

The paper's small/large columns (Tables 4/5) show constraint size and
solving time growing with transaction count; this bench sweeps session ×
transaction shapes on Smallbank and reports the growth curve for the
default stratified encoding.
"""
import time

import pytest

from harness import MAX_SECONDS, format_table
from repro.bench_apps import Smallbank, WorkloadConfig, record_observed
from repro.isolation import IsolationLevel
from repro.predict import IsoPredict, PredictionStrategy

SHAPES = [
    (2, 2),  # 4 transactions
    (3, 2),  # 6
    (3, 4),  # 12 — the paper's small workload shape
]


def measure(sessions: int, per_session: int) -> dict:
    config = WorkloadConfig(sessions, per_session, 1, f"{sessions}x{per_session}")
    observed = record_observed(Smallbank(config), seed=0).history
    analyzer = IsoPredict(
        IsolationLevel.READ_COMMITTED,
        PredictionStrategy.APPROX_STRICT,
        max_seconds=MAX_SECONDS,
    )
    start = time.monotonic()
    result = analyzer.predict(observed)
    elapsed = time.monotonic() - start
    return {
        "shape": config.label,
        "txns": len(observed),
        "status": result.status.value,
        "literals": result.stats.get("literals", 0),
        "clauses": result.stats.get("clauses", 0),
        "seconds": elapsed,
    }


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_scaling_point(benchmark, shape, capsys):
    row = benchmark.pedantic(measure, args=shape, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[scaling] {row['shape']:6s} txns={row['txns']:2d} "
            f"lits={row['literals']:8,d} {row['seconds']:6.2f}s "
            f"({row['status']})"
        )


def test_scaling_curve_is_monotone(capsys):
    rows = [measure(*shape) for shape in SHAPES]
    with capsys.disabled():
        print(
            format_table(
                "Scaling: Smallbank under rc (approx-strict)",
                ["shape", "txns", "status", "literals", "seconds"],
                [
                    [r["shape"], str(r["txns"]), r["status"],
                     f"{r['literals']:,}", f"{r['seconds']:.2f}"]
                    for r in rows
                ],
            )
        )
    literals = [r["literals"] for r in rows]
    assert literals == sorted(literals), "constraint size grows with txns"
