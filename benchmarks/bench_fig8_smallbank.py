"""Figure 8: the Smallbank write-skew prediction and its pco cycle.

Both repointed reads live in read-only transactions, so even the strict
boundary keeps the full cycle t1 < t3 < t2 < t4 < t1 (two so edges, the
rw_y edge t3->t2 and the rw_x edge t4->t1).
"""
import networkx as nx

from repro import gallery
from repro.isolation import IsolationLevel, pco_unserializable
from repro.isolation.axioms import pco_edges
from repro.predict import IsoPredict, PredictionStrategy
from repro.viz import history_to_dot


def predict_strict():
    return IsoPredict(
        IsolationLevel.CAUSAL, PredictionStrategy.APPROX_STRICT
    ).predict(gallery.fig8a_smallbank_observed())


def test_fig8_prediction_under_strict(benchmark, capsys):
    result = benchmark.pedantic(predict_strict, rounds=1, iterations=1)
    assert result.found
    with capsys.disabled():
        print("\n[fig8b] predicted execution:")
        print(history_to_dot(result.predicted, include_pco=True))


def test_fig8_cycle_matches_paper(capsys):
    """The paper reports the cycle t1 < t3 < t2 < t4 < t1."""
    predicted = gallery.fig8b_smallbank_predicted()
    assert pco_unserializable(predicted)
    edges = pco_edges(predicted)
    graph = nx.DiGraph()
    for kind in ("so", "wr", "ww", "rw"):
        graph.add_edges_from(edges[kind])
    cycle_nodes = {a for a, b in nx.find_cycle(graph, "t1")}
    assert cycle_nodes == {"t1", "t2", "t3", "t4"}
    assert ("t3", "t2") in edges["rw"]
    assert ("t4", "t1") in edges["rw"]
    with capsys.disabled():
        print("\n[fig8b] pco cycle t1 < t3 < t2 < t4 < t1 via rw edges "
              f"{sorted(edges['rw'])}")
