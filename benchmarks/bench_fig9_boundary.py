"""Figure 9: divergence and the strict vs relaxed prediction boundary.

The deposit/withdraw/deposit scenario: the unbounded prediction (9c) makes
the withdraw read balance 0, which aborts during validation (9d). The
strict boundary excludes the withdraw's write and the truncated history is
serializable (9e: UNSAT); the relaxed boundary admits a prediction (9f)
that validation must then reject or confirm.
"""
from harness import format_table
from repro import gallery
from repro.isolation import IsolationLevel, is_serializable
from repro.predict import IsoPredict, PredictionStrategy
from repro.smt import Result
from repro.validate import validate_prediction

LEVEL = IsolationLevel.CAUSAL


def deposit(amount):
    def program(client, rng):
        balance = client.get("acct")
        client.put("acct", (balance or 0) + amount)
        client.commit()

    return program


def withdraw(amount):
    def program(client, rng):
        balance = client.get("acct")
        if (balance or 0) < amount:
            client.rollback()
        else:
            client.put("acct", balance - amount)
            client.commit()

    return program


def chain(*programs):
    def program(client, rng):
        for p in programs:
            p(client, rng)

    return program


PROGRAMS = {
    "s1": chain(deposit(60), deposit(5)),
    "s2": withdraw(50),
}


def test_fig9_strict_vs_relaxed(benchmark, capsys):
    observed = gallery.fig9_observed()

    def both():
        strict = IsoPredict(
            LEVEL, PredictionStrategy.APPROX_STRICT
        ).predict(observed)
        relaxed = IsoPredict(
            LEVEL, PredictionStrategy.APPROX_RELAXED
        ).predict(observed)
        return strict, relaxed

    strict, relaxed = benchmark.pedantic(both, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            format_table(
                "Fig. 9e/9f: boundary comparison",
                ["boundary", "prediction"],
                [
                    ["strict", strict.status.value],
                    ["relaxed", relaxed.status.value],
                ],
            )
        )
    assert strict.status is Result.UNSAT  # 9e: truncation is serializable
    assert relaxed.status is Result.SAT  # 9f: relaxed admits a prediction


def test_fig9d_validation_catches_false_prediction(benchmark, capsys):
    """Replay the paper's exact 9c prediction: the withdraw aborts."""
    predicted = gallery.fig9c_predicted()
    observed = gallery.fig9_observed()
    report = benchmark.pedantic(
        validate_prediction,
        args=(predicted, PROGRAMS, LEVEL),
        kwargs={"observed": observed, "initial": {"acct": 0}},
        rounds=1,
        iterations=1,
    )
    assert report.diverged
    assert not report.validated
    assert is_serializable(report.validating)
    with capsys.disabled():
        sessions = {
            t.session for t in report.validating.transactions()
        }
        print(
            f"\n[fig9d] withdraw aborted during replay "
            f"(validating sessions: {sorted(sessions)}); validating "
            "execution is serializable -> false prediction rejected"
        )
