"""Benchmark configuration: make the harness importable, collect tables."""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
