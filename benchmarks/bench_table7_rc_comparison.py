"""Table 7: MonkeyDB vs IsoPredict vs a realistic store under read committed.

The third column re-runs the benchmarks on the statement-interleaved
executor with latest-committed reads — our stand-in for MySQL in rc mode
(DESIGN.md §2). Expected shape: MonkeyDB and IsoPredict find anomalies for
every program under rc, while the realistic executor only races TPC-C
(whose long new-order transactions overlap at the district counter).
"""
import pytest

from harness import (
    RUNS,
    format_table,
    interleaved_row,
    monkeydb_row,
    prediction_row,
    workloads,
)
from repro.bench_apps import ALL_APPS, TPCC
from repro.isolation import IsolationLevel
from repro.predict import PredictionStrategy

LEVEL = IsolationLevel.READ_COMMITTED


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
def test_table7_interleaved_cell(benchmark, app_cls, capsys):
    config = workloads()[0]
    row = benchmark.pedantic(
        interleaved_row, args=(app_cls, config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(
            f"\n[table7] {app_cls.name:10s} interleaved-rc "
            f"fail={row.fail_pct}%"
        )
    assert row.failed <= row.unserializable


def test_table7_full_table(capsys):
    config = workloads()[0]
    rows = []
    fail_by_name = {}
    for app_cls in ALL_APPS:
        mk = monkeydb_row(app_cls, LEVEL, config)
        iso = prediction_row(
            app_cls, LEVEL, PredictionStrategy.APPROX_STRICT, config
        )
        realistic = interleaved_row(app_cls, config)
        iso_pct = round(
            100 * iso.validated / max(1, iso.sat + iso.unsat + iso.unknown)
        )
        fail_by_name[app_cls.name] = realistic.fail_pct
        rows.append(
            [
                app_cls.name,
                f"{mk.fail_pct}%",
                f"{mk.unser_pct}%",
                f"{iso_pct}%",
                f"{realistic.fail_pct}%",
            ]
        )
    with capsys.disabled():
        print(
            format_table(
                f"Table 7: MonkeyDB vs IsoPredict (approx-strict) vs "
                f"realistic rc executor ({RUNS} runs)",
                ["program", "mk fail", "mk unser", "isopredict unser",
                 "realistic fail"],
                rows,
            )
        )
    # the realistic executor races TPC-C far more than anything else
    others = max(
        v for k, v in fail_by_name.items() if k != "tpcc"
    )
    assert fail_by_name["tpcc"] > others


def test_tpcc_races_are_real_lost_updates(capsys):
    """Drill-down: the TPC-C interleaved failures are duplicate order ids."""
    from repro.bench_apps import run_interleaved_rc

    config = workloads()[0]
    for seed in range(RUNS):
        out = run_interleaved_rc(TPCC(config), seed)
        if out.assertion_failed:
            with capsys.disabled():
                print(f"\n[table7] tpcc seed {seed}: {out.failures[0]}")
            assert "order" in out.failures[0] or "next_o_id" in out.failures[0]
            return
    pytest.skip("no TPC-C race in this seed range")
