"""Table 4: IsoPredict effectiveness and performance under causal.

For every program × prediction strategy, runs IsoPredict on seeded observed
executions, validates each prediction by replay, and reports the paper's
columns: Unknown/Unsat/Sat, Validated (Diverged), literal count, constraint
generation time, and solving time split by outcome.

Expected shape (§7.2): Approx-Relaxed ⊇ Approx-Strict ⊆/= Exact-Strict;
Voter never predicts (single writing transaction); Wikipedia predicts
rarely under causal.
"""
import pytest

from harness import format_table, prediction_row, workloads
from repro.bench_apps import ALL_APPS
from repro.isolation import IsolationLevel
from repro.predict import PredictionStrategy

LEVEL = IsolationLevel.CAUSAL
HEADERS = [
    "program", "strategy", "unk", "unsat", "sat", "validated (div)",
    "literals", "gen", "solve-sat", "solve-unsat",
]


@pytest.mark.parametrize("strategy", PredictionStrategy.ALL, ids=str)
@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
def test_table4_cell(benchmark, app_cls, strategy, capsys):
    config = workloads()[0]
    row = benchmark.pedantic(
        prediction_row,
        args=(app_cls, LEVEL, strategy, config),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print(f"\n[table4] {'  '.join(row.as_cells())}")
    # paper-shape invariants that must hold at any scale
    if app_cls.name == "voter":
        assert row.sat == 0, "Voter has a single writing transaction (§7.2)"
    assert row.validated <= row.sat


def test_table4_full_table(capsys):
    rows = []
    for config in workloads():
        for app_cls in ALL_APPS:
            for strategy in PredictionStrategy.ALL:
                row = prediction_row(app_cls, LEVEL, strategy, config)
                rows.append(row.as_cells() + [config.label])
    with capsys.disabled():
        print(
            format_table(
                "Table 4: prediction under causal",
                HEADERS + ["workload"],
                rows,
            )
        )
    # Approx-Relaxed finds at least as much as Approx-Strict per program
    by_key = {
        (r[0], r[1], r[-1]): int(r[4]) for r in rows
    }
    for config in workloads():
        for app_cls in ALL_APPS:
            strict = by_key[(app_cls.name, "approx-strict", config.label)]
            relaxed = by_key[(app_cls.name, "approx-relaxed", config.label)]
            assert relaxed >= strict
