"""Figure 10: the observed/predicted pattern gallery (a-h).

Four observed executions whose predictions exhibit the paper's
rw-edge-carried cycles. The published drawings elide session structure, so
the reconstructions preserve the documented pattern (which reads repoint,
and the rw cycles proving unserializability) rather than edge-for-edge
identity — see gallery module notes.
"""
import pytest

from harness import format_table
from repro import gallery
from repro.isolation import (
    IsolationLevel,
    is_causal,
    is_read_committed,
    is_serializable,
    pco_unserializable,
)
from repro.isolation.axioms import pco_edges
from repro.predict import IsoPredict, PredictionStrategy

PATTERNS = gallery.fig10_patterns()


@pytest.mark.parametrize("name", list(PATTERNS), ids=lambda n: n)
def test_fig10_prediction(benchmark, name, capsys):
    observed, expected = PATTERNS[name]
    result = benchmark.pedantic(
        IsoPredict(
            IsolationLevel.CAUSAL, PredictionStrategy.APPROX_RELAXED
        ).predict,
        args=(observed,),
        rounds=1,
        iterations=1,
    )
    assert result.found
    assert is_causal(result.predicted)
    assert not is_serializable(result.predicted)
    with capsys.disabled():
        print(f"\n[fig10:{name}] cycle {' < '.join(result.cycle)}")


def test_fig10_expected_patterns_table(capsys):
    rows = []
    for name, (observed, expected) in PATTERNS.items():
        assert is_serializable(observed)
        assert is_causal(expected) and is_read_committed(expected)
        assert pco_unserializable(expected)
        rw = sorted(pco_edges(expected)["rw"])
        rows.append([name, str(len(rw)), ", ".join(f"{a}->{b}" for a, b in rw)])
    with capsys.disabled():
        print(
            format_table(
                "Fig. 10: expected predicted patterns",
                ["pattern", "#rw", "rw edges in cycle"],
                rows,
            )
        )
