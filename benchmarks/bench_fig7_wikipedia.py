"""Figure 7: Wikipedia-shaped predictions — when they exist and when not.

7a/7b: session structure with t2,t3 split admits a causal prediction that
repoints t3's read of x to the initial state (two rw_x edges close the
cycle). 7c: with t2,t3 in one session no causal prediction exists, because
7d's repointing is non-causal. Under rc, 7c does predict (§7.2's
explanation of Wikipedia's rc-vs-causal gap).
"""
from harness import format_table
from repro import gallery
from repro.isolation import IsolationLevel, is_causal
from repro.predict import IsoPredict, PredictionStrategy
from repro.smt import Result
from repro.viz import history_to_dot


def predict(history, level):
    return IsoPredict(
        level, PredictionStrategy.APPROX_RELAXED, max_seconds=60
    ).predict(history)


def test_fig7a_prediction_exists(benchmark, capsys):
    result = benchmark.pedantic(
        predict,
        args=(gallery.fig7a_wikipedia_observed(), IsolationLevel.CAUSAL),
        rounds=1,
        iterations=1,
    )
    assert result.found
    assert result.predicted.transaction("t3").reads[0].writer == "t0"
    with capsys.disabled():
        print("\n[fig7b] predicted execution:")
        print(history_to_dot(result.predicted, include_pco=True))


def test_fig7c_no_causal_prediction(benchmark, capsys):
    result = benchmark.pedantic(
        predict,
        args=(gallery.fig7c_wikipedia_observed(), IsolationLevel.CAUSAL),
        rounds=1,
        iterations=1,
    )
    assert result.status is Result.UNSAT
    with capsys.disabled():
        print("\n[fig7c] no causal prediction, as the paper shows")


def test_fig7d_explains_why(capsys):
    h = gallery.fig7d_wikipedia_noncausal()
    assert not is_causal(h)
    with capsys.disabled():
        print(
            "\n[fig7d] repointing t3's read to t0 in (c) is non-causal: "
            "hb(t1,t3) forces wwcausal(t1,t0), contradicting hb(t0,t1)"
        )


def test_fig7_summary_table(capsys):
    rows = []
    for name, history, level in [
        ("7a causal", gallery.fig7a_wikipedia_observed(),
         IsolationLevel.CAUSAL),
        ("7c causal", gallery.fig7c_wikipedia_observed(),
         IsolationLevel.CAUSAL),
        ("7c rc", gallery.fig7c_wikipedia_observed(),
         IsolationLevel.READ_COMMITTED),
    ]:
        result = predict(history, level)
        rows.append([name, result.status.value])
    with capsys.disabled():
        print(
            format_table(
                "Fig. 7: prediction existence",
                ["observed/level", "result"],
                rows,
            )
        )
    assert [r[1] for r in rows] == ["sat", "unsat", "sat"]
