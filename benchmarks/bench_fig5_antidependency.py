"""Figure 5: anti-dependency (rw) edges are what make pco cyclic.

The ablation the figure motivates: on the deposit history, the pco least
fixpoint is acyclic without rw edges and cyclic with them; accordingly,
IsoPredict with rw disabled misses the prediction entirely.
"""
from harness import format_table
from repro import gallery
from repro.history.relations import so_pairs, transitive_closure, wr_pairs
from repro.isolation import pco_unserializable
from repro.isolation.axioms import _ww_from_pco, pco_edges
from repro.predict import IsoPredict, PredictionStrategy
from repro.smt import Result
from repro.isolation import IsolationLevel


def fixpoint_without_rw(history):
    nodes = [t.tid for t in history.all_transactions()]
    pco = transitive_closure(
        set(so_pairs(history)) | set(wr_pairs(history)), nodes=nodes
    )
    while True:
        ww = _ww_from_pco(history, pco)
        new = transitive_closure(set(pco) | set(ww), nodes=nodes)
        if new == pco:
            return pco
        pco = new


def test_fig5_rw_makes_pco_cyclic(benchmark, capsys):
    h = gallery.fig5_history()
    without = benchmark.pedantic(
        fixpoint_without_rw, args=(h,), rounds=1, iterations=1
    )
    acyclic_without = all(a != b for a, b in without)
    cyclic_with = pco_unserializable(h)
    edges = pco_edges(h)
    with capsys.disabled():
        print(
            format_table(
                "Fig. 5: pco cyclicity with/without rw",
                ["variant", "cyclic"],
                [
                    ["so+wr+ww only", str(not acyclic_without)],
                    ["with rw edges", str(cyclic_with)],
                ],
            )
        )
        print(f"rw edges: {sorted(edges['rw'])}")
    assert acyclic_without and cyclic_with


def test_fig5_prediction_needs_rw(benchmark, capsys):
    observed = gallery.deposit_observed()

    def both():
        with_rw = IsoPredict(
            IsolationLevel.CAUSAL, PredictionStrategy.APPROX_RELAXED
        ).predict(observed)
        without_rw = IsoPredict(
            IsolationLevel.CAUSAL,
            PredictionStrategy.APPROX_RELAXED,
            include_rw=False,
        ).predict(observed)
        return with_rw, without_rw

    with_rw, without_rw = benchmark.pedantic(both, rounds=1, iterations=1)
    assert with_rw.status is Result.SAT
    assert without_rw.status is Result.UNSAT
    with capsys.disabled():
        print(
            "\n[fig5] prediction with rw: SAT; without rw: UNSAT "
            "(anti-dependencies carry the cycle)"
        )
