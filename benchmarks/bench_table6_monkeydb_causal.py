"""Table 6: MonkeyDB vs IsoPredict under causal consistency.

MonkeyDB's testing mode (random isolation-legal reads) runs the benchmark
many times, reporting how often a programmer assertion fails (Fail) and how
often the resulting history is unserializable (Unser). IsoPredict's column
is the validated-prediction rate with Approx-Relaxed.

Expected shape (§7.3): comparable rates, except
* Voter/causal — MonkeyDB finds anomalies (its on-the-fly choices induce
  extra writes), IsoPredict predicts none (it cannot invent events);
* Wikipedia/causal — IsoPredict predicts while MonkeyDB's assertions are
  not sensitive enough (our port's assertion fires rarely).
Fail never exceeds Unser (assertion failure is a sufficient condition).
"""
import pytest

from harness import RUNS, format_table, monkeydb_row, prediction_row, workloads
from repro.bench_apps import ALL_APPS, Voter
from repro.isolation import IsolationLevel
from repro.predict import PredictionStrategy

LEVEL = IsolationLevel.CAUSAL


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
def test_table6_monkeydb_cell(benchmark, app_cls, capsys):
    config = workloads()[0]
    row = benchmark.pedantic(
        monkeydb_row, args=(app_cls, LEVEL, config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(
            f"\n[table6] {app_cls.name:10s} monkeydb "
            f"fail={row.fail_pct}% unser={row.unser_pct}%"
        )
    assert row.failed <= row.unserializable, (
        "assertion failure must imply unserializability"
    )


def test_table6_full_table(capsys):
    config = workloads()[0]
    rows = []
    for app_cls in ALL_APPS:
        mk = monkeydb_row(app_cls, LEVEL, config)
        iso = prediction_row(
            app_cls, LEVEL, PredictionStrategy.APPROX_RELAXED, config
        )
        iso_pct = round(100 * iso.validated / max(1, iso.sat + iso.unsat
                                                  + iso.unknown))
        rows.append(
            [
                app_cls.name,
                f"{mk.fail_pct}%",
                f"{mk.unser_pct}%",
                f"{iso_pct}%",
            ]
        )
    with capsys.disabled():
        print(
            format_table(
                f"Table 6: MonkeyDB ({RUNS} runs) vs IsoPredict "
                "(approx-relaxed) under causal",
                ["program", "mk fail", "mk unser", "isopredict unser"],
                rows,
            )
        )
    by_name = {r[0]: r for r in rows}
    # Voter: MonkeyDB finds anomalies, IsoPredict cannot (§7.3)
    assert by_name["voter"][3] == "0%"
    assert by_name["voter"][2] != "0%"


def test_voter_monkeydb_writes_beyond_observed(capsys):
    """Why Voter differs: random reads induce *additional* writes that the
    serializable observed execution never performs."""
    from repro.bench_apps import record_observed, run_random_weak

    config = workloads()[0]
    observed_writers = len(
        [
            t
            for t in record_observed(Voter(config), 0).history.transactions()
            if not t.is_read_only()
        ]
    )
    weak_writers = max(
        len(
            [
                t
                for t in run_random_weak(
                    Voter(config), seed, LEVEL
                ).history.transactions()
                if not t.is_read_only()
            ]
        )
        for seed in range(RUNS)
    )
    with capsys.disabled():
        print(
            f"\n[table6] voter writers: observed={observed_writers}, "
            f"max under random weak reads={weak_writers}"
        )
    assert observed_writers == 1
    assert weak_writers > 1
