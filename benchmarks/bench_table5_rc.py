"""Table 5: IsoPredict effectiveness and performance under read committed.

Same protocol as Table 4 at the weaker level. Expected shape (§7.2): rc
predicts at least as often as causal for every program — in the paper every
program reaches 10/10 under rc, including Voter and Wikipedia, because a
transaction may legally read both the initial state and the writer.
"""
import pytest

from harness import format_table, prediction_row, workloads
from repro.bench_apps import ALL_APPS
from repro.isolation import IsolationLevel
from repro.predict import PredictionStrategy

LEVEL = IsolationLevel.READ_COMMITTED
HEADERS = [
    "program", "strategy", "unk", "unsat", "sat", "validated (div)",
    "literals", "gen", "solve-sat", "solve-unsat",
]


@pytest.mark.parametrize("strategy", PredictionStrategy.ALL, ids=str)
@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
def test_table5_cell(benchmark, app_cls, strategy, capsys):
    config = workloads()[0]
    row = benchmark.pedantic(
        prediction_row,
        args=(app_cls, LEVEL, strategy, config),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print(f"\n[table5] {'  '.join(row.as_cells())}")
    assert row.validated <= row.sat


def test_table5_full_table(capsys):
    rows = []
    sat_by_key = {}
    for config in workloads():
        for app_cls in ALL_APPS:
            for strategy in PredictionStrategy.ALL:
                row = prediction_row(app_cls, LEVEL, strategy, config)
                rows.append(row.as_cells() + [config.label])
                sat_by_key[(app_cls.name, str(strategy), config.label)] = (
                    row.sat
                )
    with capsys.disabled():
        print(
            format_table(
                "Table 5: prediction under read committed",
                HEADERS + ["workload"],
                rows,
            )
        )


def test_rc_predicts_at_least_as_often_as_causal(capsys):
    """The defining cross-table shape: rc finds a superset of causal."""
    config = workloads()[0]
    strategy = PredictionStrategy.APPROX_RELAXED
    for app_cls in ALL_APPS:
        causal = prediction_row(
            app_cls, IsolationLevel.CAUSAL, strategy, config
        )
        rc = prediction_row(app_cls, LEVEL, strategy, config)
        with capsys.disabled():
            print(
                f"\n[table4-vs-5] {app_cls.name:10s} "
                f"causal={causal.sat} rc={rc.sat}"
            )
        assert rc.sat >= causal.sat
