"""Shared machinery for the table/figure benchmarks.

Each paper table has a *row function* here that computes the measured
quantities for one (program, strategy/mode) cell across seeds. The pytest
benchmark modules call these with the workload sizes configured through
environment variables; ``run_all.py`` uses them to regenerate every table
for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SEEDS``   — seeds per cell (paper: 10; default 3)
* ``REPRO_BENCH_RUNS``    — randomized runs for Tables 6/7 (paper: 100;
  default 20)
* ``REPRO_BENCH_LARGE``   — include the large workload (default off)
* ``REPRO_BENCH_MAX_SECONDS`` — per-solve budget (default 120)
"""
from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.bench_apps import (
    ALL_APPS,
    WorkloadConfig,
    record_observed,
    run_interleaved_rc,
    run_random_weak,
)
from repro.isolation import IsolationLevel, is_serializable
from repro.predict import IsoPredict, PredictionStrategy
from repro.smt import Result
from repro.validate import validate_prediction

__all__ = [
    "SEEDS",
    "RUNS",
    "MAX_SECONDS",
    "workloads",
    "PredictionRow",
    "prediction_row",
    "ExplorationRow",
    "monkeydb_row",
    "interleaved_row",
    "format_table",
]

SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "3"))
RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "20"))
MAX_SECONDS = float(os.environ.get("REPRO_BENCH_MAX_SECONDS", "120"))
_LARGE = os.environ.get("REPRO_BENCH_LARGE", "") not in ("", "0", "false")


def workloads() -> list[WorkloadConfig]:
    out = [WorkloadConfig.small()]
    if _LARGE:
        out.append(WorkloadConfig.large())
    return out


@dataclass
class PredictionRow:
    """One row of Table 4/5: a (program, strategy) cell."""

    program: str
    strategy: str
    workload: str
    unknown: int = 0
    unsat: int = 0
    sat: int = 0
    validated: int = 0
    diverged: int = 0
    literals: int = 0
    gen_seconds: float = 0.0
    solve_sat_seconds: float = 0.0
    solve_unsat_seconds: float = 0.0

    def as_cells(self) -> list[str]:
        sat_avg = self.solve_sat_seconds / max(1, self.sat)
        unsat_avg = self.solve_unsat_seconds / max(1, self.unsat)
        return [
            self.program,
            self.strategy,
            str(self.unknown),
            str(self.unsat),
            str(self.sat),
            f"{self.validated} ({self.diverged})",
            f"{self.literals // max(1, self.sat + self.unsat + self.unknown):,}",
            f"{self.gen_seconds / max(1, SEEDS):.2f} s",
            f"{sat_avg:.2f} s" if self.sat else "-",
            f"{unsat_avg:.2f} s" if self.unsat else "-",
        ]


def prediction_row(
    app_cls,
    level: IsolationLevel,
    strategy: PredictionStrategy,
    config: WorkloadConfig,
    seeds: int = None,
    validate: bool = True,
) -> PredictionRow:
    """Tables 4/5: run IsoPredict across seeds, validating every prediction."""
    seeds = SEEDS if seeds is None else seeds
    row = PredictionRow(app_cls.name, str(strategy), config.label)
    for seed in range(seeds):
        app = app_cls(config)
        outcome = record_observed(app, seed)
        analyzer = IsoPredict(level, strategy, max_seconds=MAX_SECONDS)
        result = analyzer.predict(outcome.history)
        row.literals += result.stats.get("literals", 0)
        row.gen_seconds += result.stats.get("gen_seconds", 0.0)
        if result.status is Result.SAT:
            row.sat += 1
            row.solve_sat_seconds += result.stats.get("solve_seconds", 0.0)
        elif result.status is Result.UNSAT:
            row.unsat += 1
            row.solve_unsat_seconds += result.stats.get("solve_seconds", 0.0)
        else:
            row.unknown += 1
        if result.found and validate:
            replay = app_cls(config)
            report = validate_prediction(
                result.predicted,
                replay.programs(),
                level,
                observed=outcome.history,
                seed=seed,
                initial=replay.initial_state(),
            )
            if report.validated:
                row.validated += 1
            if report.diverged:
                row.diverged += 1
    return row


@dataclass
class ExplorationRow:
    """One row of Table 6/7: assertion failures & unserializability rates."""

    program: str
    mode: str
    runs: int = 0
    failed: int = 0
    unserializable: int = 0

    @property
    def fail_pct(self) -> int:
        return round(100 * self.failed / max(1, self.runs))

    @property
    def unser_pct(self) -> int:
        return round(100 * self.unserializable / max(1, self.runs))

    def as_cells(self) -> list[str]:
        return [
            self.program,
            self.mode,
            f"{self.fail_pct}%",
            f"{self.unser_pct}%",
        ]


def monkeydb_row(
    app_cls, level: IsolationLevel, config: WorkloadConfig, runs: int = None
) -> ExplorationRow:
    """MonkeyDB testing mode: random isolation-legal reads (Tables 6/7)."""
    runs = RUNS if runs is None else runs
    row = ExplorationRow(app_cls.name, f"monkeydb-{level}")
    for seed in range(runs):
        outcome = run_random_weak(app_cls(config), seed, level)
        row.runs += 1
        if outcome.assertion_failed:
            row.failed += 1
        if not is_serializable(outcome.history):
            row.unserializable += 1
    return row


def interleaved_row(
    app_cls, config: WorkloadConfig, runs: int = None
) -> ExplorationRow:
    """The MySQL stand-in (Table 7's rightmost column)."""
    runs = RUNS if runs is None else runs
    row = ExplorationRow(app_cls.name, "interleaved-rc")
    for seed in range(runs):
        outcome = run_interleaved_rc(app_cls(config), seed)
        row.runs += 1
        if outcome.assertion_failed:
            row.failed += 1
        if not is_serializable(outcome.history):
            row.unserializable += 1
    return row


def format_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [f"\n=== {title} ===", fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
