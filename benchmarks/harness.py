"""Shared machinery for the table/figure benchmarks.

Each paper table has a *row function* here that computes the measured
quantities for one (program, strategy/mode) cell across seeds. Since PR 1
the rows are produced by the campaign subsystem (``repro.campaign``): a row
function builds a one-cell :class:`~repro.campaign.CampaignSpec`, runs it
through the :class:`~repro.campaign.CampaignExecutor` (parallel when
``REPRO_BENCH_JOBS`` > 1), and reshapes the aggregated cell. The pytest
benchmark modules call these with the workload sizes configured through
environment variables; ``run_all.py`` uses whole-sweep campaigns to
regenerate every table for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SEEDS``   — seeds per cell (paper: 10; default 3)
* ``REPRO_BENCH_RUNS``    — randomized runs for Tables 6/7 (paper: 100;
  default 20)
* ``REPRO_BENCH_JOBS``    — campaign worker processes (default 1)
* ``REPRO_BENCH_LARGE``   — include the large workload (default off)
* ``REPRO_BENCH_MAX_SECONDS`` — per-solve budget (default 120)
"""
from __future__ import annotations

import os
from dataclasses import dataclass

from repro.bench_apps import WorkloadConfig
from repro.campaign import CampaignExecutor, CampaignSpec, CellSummary
from repro.campaign import format_table  # noqa: F401  (bench modules import it here)
from repro.isolation import IsolationLevel
from repro.predict import PredictionStrategy

__all__ = [
    "SEEDS",
    "RUNS",
    "JOBS",
    "MAX_SECONDS",
    "workloads",
    "PredictionRow",
    "prediction_row",
    "prediction_cell",
    "ExplorationRow",
    "exploration_cell",
    "monkeydb_row",
    "interleaved_row",
    "format_table",
]

SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "3"))
RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "20"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
MAX_SECONDS = float(os.environ.get("REPRO_BENCH_MAX_SECONDS", "120"))
_LARGE = os.environ.get("REPRO_BENCH_LARGE", "") not in ("", "0", "false")


def workloads() -> list[WorkloadConfig]:
    out = [WorkloadConfig.small()]
    if _LARGE:
        out.append(WorkloadConfig.large())
    return out


@dataclass
class PredictionRow:
    """One row of Table 4/5: a (program, strategy) cell."""

    program: str
    strategy: str
    workload: str
    unknown: int = 0
    unsat: int = 0
    sat: int = 0
    validated: int = 0
    diverged: int = 0
    literals: int = 0
    gen_seconds: float = 0.0
    solve_sat_seconds: float = 0.0
    solve_unsat_seconds: float = 0.0

    @classmethod
    def from_cell(cls, cell: CellSummary) -> "PredictionRow":
        return cls(
            program=cell.app,
            strategy=cell.strategy,
            workload=cell.workload,
            unknown=cell.unknown,
            unsat=cell.unsat,
            sat=cell.sat,
            validated=cell.validated,
            diverged=cell.diverged,
            literals=cell.literals,
            gen_seconds=cell.gen_seconds,
            solve_sat_seconds=cell.solve_sat_seconds,
            solve_unsat_seconds=cell.solve_unsat_seconds,
        )

    def as_cells(self) -> list[str]:
        sat_avg = self.solve_sat_seconds / max(1, self.sat)
        unsat_avg = self.solve_unsat_seconds / max(1, self.unsat)
        return [
            self.program,
            self.strategy,
            str(self.unknown),
            str(self.unsat),
            str(self.sat),
            f"{self.validated} ({self.diverged})",
            f"{self.literals // max(1, self.sat + self.unsat + self.unknown):,}",
            f"{self.gen_seconds / max(1, SEEDS):.2f} s",
            f"{sat_avg:.2f} s" if self.sat else "-",
            f"{unsat_avg:.2f} s" if self.unsat else "-",
        ]


def _run_single_cell(spec: CampaignSpec) -> CellSummary:
    report = CampaignExecutor(spec, jobs=JOBS).run()
    (cell,) = report.cells.values()
    return cell


def _check_preset(config: WorkloadConfig) -> None:
    """Campaign rounds rebuild workloads from (label, ops_scale) only."""
    from repro.campaign.spec import _workload_config

    expected = _workload_config(config.label, config.ops_scale)
    if config != expected:
        raise ValueError(
            f"campaign-driven rows only support the preset workload shapes "
            f"(tiny/small/large + ops_scale); got {config} where label "
            f"{config.label!r} means {expected}"
        )


def prediction_cell(
    app_cls,
    level: IsolationLevel,
    strategy: PredictionStrategy,
    config: WorkloadConfig,
    seeds: int = None,
    validate: bool = True,
) -> CellSummary:
    """Run one Table 4/5 cell as a campaign (parallel across seeds)."""
    _check_preset(config)
    spec = CampaignSpec(
        name=f"bench-{app_cls.name}",
        apps=(app_cls.name,),
        isolation_levels=(str(level),),
        strategies=(str(strategy),),
        workloads=(config.label,),
        seeds=SEEDS if seeds is None else seeds,
        ops_scale=config.ops_scale,
        validate=validate,
        max_seconds=MAX_SECONDS,
    )
    return _run_single_cell(spec)


def prediction_row(
    app_cls,
    level: IsolationLevel,
    strategy: PredictionStrategy,
    config: WorkloadConfig,
    seeds: int = None,
    validate: bool = True,
) -> PredictionRow:
    """Tables 4/5: run IsoPredict across seeds, validating every prediction."""
    return PredictionRow.from_cell(
        prediction_cell(app_cls, level, strategy, config, seeds, validate)
    )


@dataclass
class ExplorationRow:
    """One row of Table 6/7: assertion failures & unserializability rates."""

    program: str
    mode: str
    runs: int = 0
    failed: int = 0
    unserializable: int = 0

    @property
    def fail_pct(self) -> int:
        return round(100 * self.failed / max(1, self.runs))

    @property
    def unser_pct(self) -> int:
        return round(100 * self.unserializable / max(1, self.runs))

    def as_cells(self) -> list[str]:
        return [
            self.program,
            self.mode,
            f"{self.fail_pct}%",
            f"{self.unser_pct}%",
        ]


def exploration_cell(
    mode: str,
    app_cls,
    level: IsolationLevel,
    config: WorkloadConfig,
    runs: int = None,
) -> CellSummary:
    _check_preset(config)
    spec = CampaignSpec(
        name=f"bench-{app_cls.name}",
        apps=(app_cls.name,),
        isolation_levels=(str(level),),
        workloads=(config.label,),
        seeds=RUNS if runs is None else runs,
        modes=(mode,),
        ops_scale=config.ops_scale,
    )
    return _run_single_cell(spec)


def _exploration_row(cell: CellSummary, mode_label: str) -> ExplorationRow:
    return ExplorationRow(
        program=cell.app,
        mode=mode_label,
        runs=cell.rounds - cell.errors,
        failed=cell.assertion_failed,
        unserializable=cell.unserializable,
    )


def monkeydb_row(
    app_cls, level: IsolationLevel, config: WorkloadConfig, runs: int = None
) -> ExplorationRow:
    """MonkeyDB testing mode: random isolation-legal reads (Tables 6/7)."""
    cell = exploration_cell("monkeydb", app_cls, level, config, runs)
    return _exploration_row(cell, f"monkeydb-{level}")


def interleaved_row(
    app_cls, config: WorkloadConfig, runs: int = None
) -> ExplorationRow:
    """The MySQL stand-in (Table 7's rightmost column)."""
    cell = exploration_cell(
        "interleaved", app_cls, IsolationLevel.READ_COMMITTED, config, runs
    )
    return _exploration_row(cell, "interleaved-rc")
